"""Online monitoring of recurring behaviour over an unbounded stream.

The batch miners need the whole database; operational settings (the
paper's network-administration motivation) want to watch a live event
stream and know, *as events arrive*, which items are inside a periodic
stretch, which stretches have become interesting, and which items have
reached the recurrence threshold.

:class:`StreamingRecurrenceMonitor` maintains, per item, exactly the
state of the paper's Algorithm 1 / Algorithm 5 — the timestamp of the
last occurrence, the periodic-support of the open run, the closed
interesting intervals and the streaming ``Erec`` — in O(1) per event.
Feeding a whole database through the monitor reproduces the batch
RP-list and per-item recurrence bit-for-bit (tested), which is the
incremental-maintenance property: appending new transactions never
requires a rescan.

Two properties matter for the multi-tenant registry built on top
(:mod:`repro.streaming.registry`):

* **Batch-equal timestamp merging.**  A batch
  :class:`~repro.timeseries.database.TransactionalDatabase` merges
  transactions that share a timestamp into one set-valued transaction.
  The monitor does the same: observing the same timestamp twice merges
  the itemsets instead of raising, so streamed state equals the batch
  RP-list even on inputs with split same-timestamp rows.  Only a
  timestamp *decrease* is an error.
* **Exact serialization.**  :meth:`StreamingRecurrenceMonitor.state_dict`
  captures the complete monitor state — including the open-run
  counters and the same-timestamp merge buffer — as a deterministic
  JSON-compatible dict, and
  :meth:`StreamingRecurrenceMonitor.from_state` restores it
  bit-identically.  This is what makes eviction/re-admission and
  checkpoint/restore lossless.

The monitor tracks *items*; to watch a specific itemset, register it as
a composite via :meth:`watch_pattern` — the monitor then treats a
transaction containing the whole itemset as one occurrence of the
composite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro._validation import Number, check_count, check_positive
from repro.core.model import PeriodicInterval
from repro.exceptions import DataFormatError
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "ItemState",
    "StreamingRecurrenceMonitor",
    "decode_item",
    "encode_item",
    "item_sort_key",
]

IntervalCallback = Callable[[Item, PeriodicInterval], None]


# ----------------------------------------------------------------------
# Item codec (shared with the checkpoint layer)
# ----------------------------------------------------------------------
def encode_item(item: Item) -> object:
    """A JSON-compatible, deterministic encoding of an item.

    Scalars (``str``/``int``/``float``/``bool``) pass through —
    JSON preserves their type — and composite labels (``frozenset`` /
    ``tuple`` of scalars) become tagged one-key dicts.  Anything else
    is a :class:`~repro.exceptions.DataFormatError`: checkpoints must
    round-trip exactly, so no lossy fallback exists.

    Examples
    --------
    >>> encode_item("a")
    'a'
    >>> encode_item(frozenset(["b", "a"]))
    {'frozenset': ['a', 'b']}
    """
    if isinstance(item, (str, int, float, bool)):
        return item
    if isinstance(item, frozenset):
        return {
            "frozenset": [
                encode_item(i) for i in sorted(item, key=item_sort_key)
            ]
        }
    if isinstance(item, tuple):
        return {"tuple": [encode_item(i) for i in item]}
    raise DataFormatError(
        f"cannot serialize stream item of type {type(item).__name__}: "
        f"{item!r} (supported: str, int, float, bool, frozenset, tuple)"
    )


def decode_item(encoded: object) -> Item:
    """Invert :func:`encode_item`.

    Examples
    --------
    >>> decode_item({'frozenset': ['a', 'b']}) == frozenset(['a', 'b'])
    True
    """
    if isinstance(encoded, dict):
        if set(encoded) == {"frozenset"}:
            return frozenset(decode_item(i) for i in encoded["frozenset"])
        if set(encoded) == {"tuple"}:
            return tuple(decode_item(i) for i in encoded["tuple"])
        raise DataFormatError(f"unrecognised encoded item: {encoded!r}")
    if isinstance(encoded, list):
        raise DataFormatError(f"unrecognised encoded item: {encoded!r}")
    return encoded


def item_sort_key(item: Item) -> str:
    """A deterministic sort key for mixed item types.

    ``repr`` is unstable for ``frozenset`` (iteration order is
    hash-seed dependent), so ordering in serialized state uses the
    canonical JSON of the *encoded* item instead — identical across
    processes and hash seeds, which is what makes checkpoints
    byte-reproducible.
    """
    return json.dumps(encode_item(item), sort_keys=True)


@dataclass
class ItemState:
    """Streaming per-item state (the paper's idl/ps/erec trio, plus the
    closed interesting intervals)."""

    support: int = 0
    erec: int = 0
    last_ts: float = 0.0
    run_start: float = 0.0
    current_ps: int = 0
    intervals: List[PeriodicInterval] = field(default_factory=list)

    @property
    def recurrence(self) -> int:
        """Interesting intervals closed so far (open run excluded)."""
        return len(self.intervals)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot (see ``repro-stream/v1``)."""
        return {
            "support": self.support,
            "erec": self.erec,
            "last_ts": self.last_ts,
            "run_start": self.run_start,
            "current_ps": self.current_ps,
            "intervals": [
                [iv.start, iv.end, iv.periodic_support]
                for iv in self.intervals
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ItemState":
        """Rebuild an exact :class:`ItemState` from :meth:`to_dict`."""
        return cls(
            support=payload["support"],
            erec=payload["erec"],
            last_ts=payload["last_ts"],
            run_start=payload["run_start"],
            current_ps=payload["current_ps"],
            intervals=[
                PeriodicInterval(start, end, ps)
                for start, end, ps in payload["intervals"]
            ],
        )


class StreamingRecurrenceMonitor:
    """Watch an event stream for recurring items and itemsets.

    Parameters
    ----------
    per, min_ps, min_rec:
        Model thresholds; ``min_ps`` must be an absolute count here (a
        stream has no fixed size to take a fraction of).
    on_interval:
        Optional callback fired whenever an interesting interval
        *closes* (the run breaks after reaching ``min_ps``).

    Examples
    --------
    >>> monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
    >>> for ts in [1, 3, 4]:
    ...     monitor.observe(ts, ["a"])
    >>> monitor.observe(10, ["a"])   # run breaks: [1, 4] closes
    >>> monitor.recurrence("a")
    1
    """

    def __init__(
        self,
        per: Number,
        min_ps: int,
        min_rec: int = 1,
        on_interval: Optional[IntervalCallback] = None,
    ):
        check_positive(per, "per")
        check_count(min_ps, "min_ps")
        check_count(min_rec, "min_rec")
        self.per = per
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.on_interval = on_interval
        self._states: Dict[Item, ItemState] = {}
        self._patterns: Dict[Item, FrozenSet[Item]] = {}
        self._last_ts: Optional[float] = None
        #: Items observed at ``_last_ts`` so far — the same-timestamp
        #: merge buffer mirroring the batch TDB's group-by-timestamp.
        self._current_items: FrozenSet[Item] = frozenset()
        #: Shared counters (:mod:`repro.obs.counters`), mapped to the
        #: streaming setting: ``candidate_items`` = distinct tracked
        #: items/composites, ``erec_evaluations`` = run closures (each
        #: updates the streaming Erec), ``recurrence_evaluations`` =
        #: interesting intervals closed, ``patterns_found`` = items
        #: that have crossed ``min_rec``.
        self.stats = MiningStats()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def watch_pattern(self, items: Iterable[Item], label: Item) -> None:
        """Track the itemset ``items`` as the composite item ``label``.

        Must be registered before the relevant events arrive; a
        transaction containing every item of the set counts as one
        occurrence of ``label``.
        """
        itemset = frozenset(items)
        if not itemset:
            raise ValueError("a watched pattern needs at least one item")
        self._patterns[label] = itemset

    def observe(self, ts: float, items: Iterable[Item]) -> None:
        """Feed one transaction.  Timestamps must be non-decreasing.

        Observing the *same* timestamp again merges the itemsets —
        exactly what the batch ``TransactionalDatabase`` constructor
        does with same-timestamp rows — so split transactions stream
        to the same state the batch miner sees.  A timestamp decrease
        raises ``ValueError``.
        """
        if self._last_ts is not None and ts < self._last_ts:
            raise ValueError(
                f"timestamps must be non-decreasing; got {ts!r} after "
                f"{self._last_ts!r}"
            )
        itemset = frozenset(items)
        if self._last_ts is not None and ts == self._last_ts:
            self._merge_current(ts, itemset)
            return
        self._last_ts = ts
        self._current_items = itemset
        for item in itemset:
            self._touch(item, ts)
        for label, pattern in self._patterns.items():
            if pattern <= itemset:
                self._touch(label, ts)

    def _merge_current(self, ts: float, itemset: FrozenSet[Item]) -> None:
        """Fold a repeated-timestamp transaction into the open one.

        Items (and composites) already counted at ``ts`` are not
        touched again — a transaction is a *set*, so multiplicity
        within one timestamp is invisible (paper Section 3).
        """
        union = self._current_items | itemset
        for item in itemset - self._current_items:
            self._touch(item, ts)
        for label, pattern in self._patterns.items():
            if pattern <= union and not pattern <= self._current_items:
                self._touch(label, ts)
        self._current_items = union

    def observe_database(self, database: TransactionalDatabase) -> None:
        """Feed a whole (timestamp-ordered) database."""
        with span("stream_replay"):
            for ts, itemset in database:
                self.observe(ts, itemset)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, item: Item) -> ItemState:
        """The streaming state of ``item`` (KeyError if never seen)."""
        return self._states[item]

    def recurrence(self, item: Item, include_open_run: bool = False) -> int:
        """Closed interesting intervals of ``item`` so far.

        With ``include_open_run`` the still-open run is counted too,
        provided it has already reached ``min_ps``.
        """
        state = self._states.get(item)
        if state is None:
            return 0
        count = state.recurrence
        if include_open_run and state.current_ps >= self.min_ps:
            count += 1
        return count

    def is_recurring(self, item: Item) -> bool:
        """Has ``item`` reached ``min_rec`` interesting intervals yet?"""
        return self.recurrence(item, include_open_run=True) >= self.min_rec

    def recurring_items(self) -> List[Item]:
        """All seen items/composites currently classified recurring."""
        return sorted(
            (item for item in self._states if self.is_recurring(item)),
            key=repr,
        )

    def intervals(self, item: Item, include_open_run: bool = False) -> Tuple[
        PeriodicInterval, ...
    ]:
        """Interesting intervals of ``item``, oldest first."""
        state = self._states.get(item)
        if state is None:
            return ()
        result = list(state.intervals)
        if include_open_run and state.current_ps >= self.min_ps:
            result.append(
                PeriodicInterval(state.run_start, state.last_ts, state.current_ps)
            )
        return tuple(result)

    def erec(self, item: Item, include_open_run: bool = True) -> int:
        """Streaming estimated-maximum-recurrence of ``item``.

        With ``include_open_run`` (the default) the open run's
        contribution is included, matching line 15 of Algorithm 1.
        """
        state = self._states.get(item)
        if state is None:
            return 0
        value = state.erec
        if include_open_run:
            value += state.current_ps // self.min_ps
        return value

    def support(self, item: Item) -> int:
        """Occurrences of ``item`` seen so far (0 if never seen)."""
        state = self._states.get(item)
        return 0 if state is None else state.support

    # ------------------------------------------------------------------
    # Serialization (eviction spill + repro-stream/v1 checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The complete monitor state as a deterministic, JSON-ready dict.

        Entries are sorted by :func:`item_sort_key`, so two monitors in
        identical logical state serialize to identical bytes regardless
        of insertion or hash order — the property the checkpoint
        byte-identity guarantee rests on.
        """
        return {
            "kind": "monitor",
            "per": self.per,
            "min_ps": self.min_ps,
            "min_rec": self.min_rec,
            "last_ts": self._last_ts,
            "current_items": [
                encode_item(i)
                for i in sorted(self._current_items, key=item_sort_key)
            ],
            "states": [
                [encode_item(item), self._states[item].to_dict()]
                for item in sorted(self._states, key=item_sort_key)
            ],
            "patterns": [
                [
                    encode_item(label),
                    [
                        encode_item(i)
                        for i in sorted(
                            self._patterns[label], key=item_sort_key
                        )
                    ],
                ]
                for label in sorted(self._patterns, key=item_sort_key)
            ],
            "stats": self.stats.as_dict(),
        }

    def load_state(self, payload: Mapping[str, object]) -> None:
        """Replace this monitor's state with a :meth:`state_dict` snapshot.

        Thresholds in the snapshot must match this monitor's — a
        checkpoint taken at one ``per`` cannot silently resume at
        another.
        """
        if payload.get("kind") != "monitor":
            raise DataFormatError(
                f"expected a monitor state dict, got kind="
                f"{payload.get('kind')!r}"
            )
        for name in ("per", "min_ps", "min_rec"):
            if payload[name] != getattr(self, name):
                raise DataFormatError(
                    f"state {name}={payload[name]!r} does not match "
                    f"monitor {name}={getattr(self, name)!r}"
                )
        self._last_ts = payload["last_ts"]
        self._current_items = frozenset(
            decode_item(i) for i in payload["current_items"]
        )
        self._states = {
            decode_item(encoded): ItemState.from_dict(state)
            for encoded, state in payload["states"]
        }
        self._patterns = {
            decode_item(encoded): frozenset(decode_item(i) for i in items)
            for encoded, items in payload["patterns"]
        }
        self.stats = MiningStats(**payload["stats"])

    @classmethod
    def from_state(
        cls,
        payload: Mapping[str, object],
        on_interval: Optional[IntervalCallback] = None,
    ) -> "StreamingRecurrenceMonitor":
        """Rebuild a monitor bit-identically from :meth:`state_dict`.

        Examples
        --------
        >>> monitor = StreamingRecurrenceMonitor(per=2, min_ps=2)
        >>> monitor.observe(1, ["a"]); monitor.observe(2, ["a"])
        >>> clone = StreamingRecurrenceMonitor.from_state(monitor.state_dict())
        >>> clone.state_dict() == monitor.state_dict()
        True
        """
        if payload.get("kind") != "monitor":
            raise DataFormatError(
                f"expected a monitor state dict, got kind="
                f"{payload.get('kind')!r}"
            )
        monitor = cls(
            per=payload["per"],
            min_ps=payload["min_ps"],
            min_rec=payload["min_rec"],
            on_interval=on_interval,
        )
        monitor.load_state(payload)
        return monitor

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, item: Item, ts: float) -> None:
        state = self._states.get(item)
        if state is None:
            state = ItemState()
            self._states[item] = state
            self.stats.candidate_items += 1
        if state.support == 0:
            state.run_start = ts
            state.current_ps = 1
        elif ts - state.last_ts <= self.per:
            state.current_ps += 1
        else:
            self._close_run(item, state)
            state.run_start = ts
            state.current_ps = 1
        state.support += 1
        state.last_ts = ts

    def _close_run(self, item: Item, state: ItemState) -> None:
        state.erec += state.current_ps // self.min_ps
        self.stats.erec_evaluations += 1
        if state.current_ps >= self.min_ps:
            interval = PeriodicInterval(
                state.run_start, state.last_ts, state.current_ps
            )
            state.intervals.append(interval)
            self.stats.recurrence_evaluations += 1
            if len(state.intervals) == self.min_rec:
                self.stats.patterns_found += 1
            if self.on_interval is not None:
                self.on_interval(item, interval)
