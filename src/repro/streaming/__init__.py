"""Multi-tenant streaming recurrence: monitors, shards, checkpoints.

This package grows the single-tenant
:class:`~repro.streaming.monitor.StreamingRecurrenceMonitor` (formerly
``repro.core.streaming``, which remains as a compatibility re-export)
into the service-shaped streaming layer of ROADMAP open item 2:

:mod:`repro.streaming.monitor`
    The O(1)-per-event monitor, now with batch-equal same-timestamp
    merging and exact ``state_dict``/``from_state`` serialization.
:mod:`repro.streaming.calendar`
    Calendar-anchored periods (hour-of-day / day-of-week) for both
    streaming (:class:`~repro.streaming.calendar.CalendarRecurrenceMonitor`)
    and batch (:func:`~repro.streaming.calendar.mine_calendar_patterns`).
:mod:`repro.streaming.registry`
    :class:`~repro.streaming.registry.ShardedMonitorRegistry` — stable
    hash partitioning, LRU eviction with exact re-admission, and
    ``repro-stream/v1`` checkpoint/restore.
:mod:`repro.streaming.checkpoint`
    The ``repro-stream/v1`` reader/writer and the monitor factory.

The layer's correctness contract — streamed state equals the batch
RP-list on every prefix, and checkpoint→restore→resume equals an
uninterrupted run — is enforced by the QA gate's ``stream-batch`` and
``stream-checkpoint-resume`` metamorphic relations (see
``docs/streaming.md``).
"""

from repro.streaming.calendar import (
    CALENDAR_MODES,
    CalendarPeriod,
    CalendarRecurrenceMonitor,
    mine_calendar_patterns,
)
from repro.streaming.checkpoint import (
    monitor_from_state,
    read_checkpoint,
    write_checkpoint,
)
from repro.streaming.monitor import (
    ItemState,
    StreamingRecurrenceMonitor,
    decode_item,
    encode_item,
    item_sort_key,
)
from repro.streaming.registry import ShardedMonitorRegistry, shard_of

__all__ = [
    "CALENDAR_MODES",
    "CalendarPeriod",
    "CalendarRecurrenceMonitor",
    "ItemState",
    "ShardedMonitorRegistry",
    "StreamingRecurrenceMonitor",
    "decode_item",
    "encode_item",
    "item_sort_key",
    "mine_calendar_patterns",
    "monitor_from_state",
    "read_checkpoint",
    "shard_of",
    "write_checkpoint",
]
