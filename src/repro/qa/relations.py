"""Metamorphic relations of the recurring-pattern model.

No full oracle exists for mining real databases (the naive reference
explodes combinatorially), so — following the metamorphic-testing
methodology (Chen et al., *Metamorphic Testing: A Review of Challenges
and Opportunities*) — this module checks *relations between runs*: a
transformation of the input database whose effect on the mined pattern
set is exactly predicted by the model of Definitions 1–9.  A pruning
bug, an ordering bug or a parallel-merge bug shows up as a violated
prediction even on databases where no reference result is known.

The registry :data:`RELATIONS` holds eight relations:

``time-shift``
    Shifting every timestamp by a constant shifts every interval by the
    same constant and changes nothing else.  (Definitions 4–8 only ever
    use inter-arrival *differences*; absolute time never appears.)
``item-relabel``
    A bijective relabeling of the items relabels the patterns and
    changes nothing else.  (The model never inspects item identity —
    items are opaque labels; Definition 1.)
``time-scale``
    Multiplying every timestamp *and* ``per`` by the same factor scales
    interval boundaries by that factor and changes nothing else.
    (Definition 4 compares ``iat ≤ per``; both sides scale together.)
``concat-disjoint``
    Appending a time-shifted copy of the database, separated by a gap
    longer than ``per``, doubles every pattern's support and recurrence
    — recurrence is additive over time-disjoint segments (Definition 8:
    no periodic run can span a gap > ``per``).
``event-duplication``
    Re-stating events of a transaction (duplicate rows, duplicate items,
    split transactions sharing a timestamp) changes nothing: the
    time-series-to-TDB transformation groups by timestamp and itemsets
    are sets (Section 3).
``stream-batch``
    Feeding the database through the sharded streaming registry
    (:mod:`repro.streaming`) — under eviction pressure, at shard counts
    1, 4 and 16 — yields exactly the batch engine's pattern set.  This
    is the incremental-maintenance property: the streaming monitor
    maintains the RP-list state of Algorithm 1 per event, so sharding,
    eviction and re-admission must be observationally invisible.
``stream-checkpoint-resume``
    Checkpointing the registry at a (case-derived) random cut,
    restoring, and resuming is *byte-identical* to the uninterrupted
    stream — same final checkpoint bytes, same intervals emitted after
    the cut — at shard counts 1, 4 and 16.  The streamed result must
    also still equal the batch engine's.
``shard-merge``
    Mining through the out-of-core sharded pipeline (:mod:`repro.shard`)
    — at shard counts 1, 3 and 8 *and* with cuts placed adversarially
    inside recurrence runs — equals in-memory mining exactly, per
    (engine, jobs) cell.  This is the split/merge property: shards
    partition the time axis, per-shard runs concatenate, and stitching
    across cuts recovers every maximal run (Definitions 5 and 8).

Each relation is checked per engine and per ``jobs`` level: the engine
mines the base case and the transformed case, and the transformed
result must equal the prediction computed from the base result.  This
is deliberately *self*-referential — it needs no second engine — so a
violation pins the blame on the engine under test.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import random

from repro._validation import resolve_count_threshold
from repro.core.engines import ENGINES, get_engine
from repro.core.model import PeriodicInterval
from repro.qa.differential import (
    BASE_SEED,
    CaseParams,
    Row,
    Rows,
    format_reproducer,
    mine_canonical,
    minimize_case,
    random_params,
    random_rows,
)
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "RELATIONS",
    "SHARD_MERGE_COUNTS",
    "STREAM_SHARDS",
    "MetamorphicRelation",
    "RelationCase",
    "RelationCheck",
    "RelationViolation",
    "RelationsResult",
    "check_relation",
    "default_case_corpus",
    "engine_matrix",
    "get_relation",
    "run_relations",
]

#: Canonical pattern view, as produced by ``repro.qa.differential.canonical``.
Canonical = List[tuple]

#: An engine-bound miner: (rows, params) -> canonical pattern view.
MineFn = Callable[[Rows, CaseParams], Canonical]

#: Constant used by the ``time-shift`` relation.
SHIFT = 97

#: Constant factor used by the ``time-scale`` relation.
SCALE = 3


@dataclass(frozen=True)
class MetamorphicRelation:
    """One input transformation with its predicted output mapping.

    Attributes
    ----------
    name:
        Registry key (also the name in reports and CLI output).
    description:
        One-line human summary of the transformation.
    paper_basis:
        Which definition of the paper makes the prediction exact.
    transform:
        Maps a base case ``(rows, params)`` to the transformed case.
    expected:
        Computes the predicted canonical pattern set of the transformed
        case.  Receives an engine-bound ``mine`` callable (memoized by
        the checker) so relations whose prediction needs a re-mine at
        different thresholds — ``concat-disjoint`` — can express it.
    """

    name: str
    description: str
    paper_basis: str
    transform: Callable[[Rows, CaseParams], Tuple[List[Row], CaseParams]]
    expected: Callable[[MineFn, Rows, CaseParams], Canonical]


# ----------------------------------------------------------------------
# The transformations and their predictions
# ----------------------------------------------------------------------
def _shift_transform(rows: Rows, params: CaseParams):
    return [(ts + SHIFT, items) for ts, items in rows], params


def _shift_expected(mine: MineFn, rows: Rows, params: CaseParams):
    return sorted(
        (
            items,
            support,
            recurrence,
            tuple(
                PeriodicInterval(iv.start + SHIFT, iv.end + SHIFT,
                                 iv.periodic_support)
                for iv in intervals
            ),
        )
        for items, support, recurrence, intervals in mine(rows, params)
    )


def _relabeling(rows: Rows) -> Dict[object, object]:
    """A non-trivial bijection on the case's item universe.

    Reversing the sorted item list permutes the items *within* the same
    alphabet, which also perturbs every support-descending tie-break on
    item repr — exactly the kind of internal ordering the result must
    not depend on.
    """
    universe = sorted({item for _, items in rows for item in items},
                      key=repr)
    return dict(zip(universe, reversed(universe)))


def _relabel_transform(rows: Rows, params: CaseParams):
    mapping = _relabeling(rows)
    return [
        (ts, tuple(mapping[item] for item in items)) for ts, items in rows
    ], params


def _relabel_expected(mine: MineFn, rows: Rows, params: CaseParams):
    mapping = {
        str(old): str(new) for old, new in _relabeling(rows).items()
    }
    return sorted(
        (
            tuple(sorted(mapping[item] for item in items)),
            support,
            recurrence,
            intervals,
        )
        for items, support, recurrence, intervals in mine(rows, params)
    )


def _scale_transform(rows: Rows, params: CaseParams):
    return (
        [(ts * SCALE, items) for ts, items in rows],
        CaseParams(params.per * SCALE, params.min_ps, params.min_rec),
    )


def _scale_expected(mine: MineFn, rows: Rows, params: CaseParams):
    return sorted(
        (
            items,
            support,
            recurrence,
            tuple(
                PeriodicInterval(iv.start * SCALE, iv.end * SCALE,
                                 iv.periodic_support)
                for iv in intervals
            ),
        )
        for items, support, recurrence, intervals in mine(rows, params)
    )


def _concat_offset(rows: Rows, params: CaseParams) -> int:
    """A shift larger than the row span plus ``per``.

    Guarantees the gap between the last base transaction and the first
    shifted one exceeds ``per``, so no periodic run crosses the seam.
    """
    timestamps = [ts for ts, _ in rows]
    span = max(timestamps) - min(timestamps)
    return int(span + math.ceil(params.per)) + 1


def _concat_transform(rows: Rows, params: CaseParams):
    offset = _concat_offset(rows, params)
    return (
        list(rows) + [(ts + offset, items) for ts, items in rows],
        params,
    )


def _concat_expected(mine: MineFn, rows: Rows, params: CaseParams):
    # Rec doubles over the two disjoint halves, so X recurs in the
    # concatenation iff 2 * Rec(X) >= min_rec, i.e. iff X is mined from
    # one half at ceil(min_rec / 2).  (min_ps is an absolute count here
    # — the corpus resolves fractions against the *base* size first —
    # so doubling |TDB| does not move the threshold.)
    offset = _concat_offset(rows, params)
    halved = CaseParams(
        params.per, params.min_ps, math.ceil(params.min_rec / 2)
    )
    return sorted(
        (
            items,
            2 * support,
            2 * recurrence,
            intervals
            + tuple(
                PeriodicInterval(iv.start + offset, iv.end + offset,
                                 iv.periodic_support)
                for iv in intervals
            ),
        )
        for items, support, recurrence, intervals in mine(rows, halved)
    )


def _duplicate_transform(rows: Rows, params: CaseParams):
    """Re-state every transaction redundantly without changing the TDB.

    Items are listed twice within each row, multi-item rows are split
    into two rows sharing the timestamp, and every other row is emitted
    twice wholesale — all shapes the grouping step must collapse.
    """
    transformed: List[Row] = []
    for index, (ts, items) in enumerate(rows):
        items = tuple(items)
        transformed.append((ts, items + items))
        if len(items) > 1:
            middle = len(items) // 2
            transformed.append((ts, items[:middle]))
            transformed.append((ts, items[middle:]))
        if index % 2 == 0:
            transformed.append((ts, items))
    return transformed, params


def _duplicate_expected(mine: MineFn, rows: Rows, params: CaseParams):
    return mine(rows, params)


# ----------------------------------------------------------------------
# Streaming relations (repro.streaming vs. the batch engines)
# ----------------------------------------------------------------------
#: Shard counts the streaming relations are checked at.
STREAM_SHARDS: Tuple[int, ...] = (1, 4, 16)

#: Active-monitor cap used while replaying relation cases.  With the
#: case stream plus two padding streams this forces eviction and
#: re-admission churn mid-replay, so the relations also pin "eviction
#: is observationally invisible".
_STREAM_MAX_ACTIVE = 2

#: Memo of streamed replays, keyed by (rows, params, shards) — the
#: streamed side is engine-independent, so one replay serves all nine
#: (engine, jobs) cells of the matrix.
_STREAM_MEMO: Dict[tuple, list] = {}


def _stream_case_key(rows: Rows, params: CaseParams, shards: int) -> tuple:
    return (
        tuple((ts, tuple(items)) for ts, items in rows),
        params,
        shards,
    )


def _stream_candidates(database: TransactionalDatabase) -> List[frozenset]:
    """Every non-empty sub-itemset of any transaction.

    These are exactly the itemsets that can have non-zero support, so
    enumerating them (bounded by the corpus' small per-transaction
    alphabets) gives the streaming side a complete candidate universe
    to compare against the batch engine's mined set.
    """
    candidates = set()
    for _, itemset in database:
        items = sorted(itemset, key=repr)
        for mask in range(1, 1 << len(items)):
            candidates.add(
                frozenset(
                    items[i] for i in range(len(items)) if mask >> i & 1
                )
            )
    return sorted(candidates, key=lambda c: sorted(str(i) for i in c))


def _stream_registry(params: CaseParams, min_ps: int, shards: int,
                     candidates: Sequence[frozenset], on_interval=None):
    """A relation-case registry with every candidate itemset watched."""
    from repro.streaming import ShardedMonitorRegistry

    registry = ShardedMonitorRegistry(
        per=params.per,
        min_ps=min_ps,
        min_rec=params.min_rec,
        shards=shards,
        max_active=_STREAM_MAX_ACTIVE,
        on_interval=on_interval,
    )
    for candidate in candidates:
        if len(candidate) > 1:
            registry.watch_pattern(candidate, candidate)
    return registry


def _stream_feed(registry, transactions: Sequence, lo: int, hi: int) -> None:
    """Replay ``transactions[lo:hi]`` as stream ``"qa"``, interleaved
    with padding streams so multiple shards hold state and the
    ``max_active`` cap keeps evicting and re-admitting mid-replay."""
    for index in range(lo, hi):
        ts, itemset = transactions[index]
        registry.observe("qa", ts, itemset)
        registry.observe("pad-0", index + 1, ["pad"])
        if index % 2 == 0:
            registry.observe("pad-1", index + 1, ["pad"])


def _stream_canonical(registry, candidates: Sequence[frozenset],
                      min_rec: int) -> List[tuple]:
    """The ``"qa"`` stream's recurring patterns, in canonical form."""
    try:
        monitor = registry.monitor("qa")
    except KeyError:
        return []
    entries = []
    for candidate in candidates:
        key = next(iter(candidate)) if len(candidate) == 1 else candidate
        rec = monitor.recurrence(key, include_open_run=True)
        if rec < min_rec:
            continue
        entries.append(
            (
                tuple(sorted(str(item) for item in candidate)),
                monitor.support(key),
                rec,
                monitor.intervals(key, include_open_run=True),
            )
        )
    return sorted(entries)


def _streamed_run(rows: Rows, params: CaseParams, shards: int) -> List[tuple]:
    """Replay a case through the registry; memoized across cells."""
    key = _stream_case_key(rows, params, shards)
    if key in _STREAM_MEMO:
        return _STREAM_MEMO[key]
    database = TransactionalDatabase(rows)
    min_ps = resolve_count_threshold(params.min_ps, "min_ps", len(database))
    candidates = _stream_candidates(database)
    registry = _stream_registry(params, min_ps, shards, candidates)
    transactions = list(database)
    _stream_feed(registry, transactions, 0, len(transactions))
    result = _stream_canonical(registry, candidates, params.min_rec)
    if len(_STREAM_MEMO) > 256:
        _STREAM_MEMO.clear()
    _STREAM_MEMO[key] = result
    return result


def _stream_batch_transform(rows: Rows, params: CaseParams):
    return list(rows), params


def _stream_batch_expected(mine: MineFn, rows: Rows, params: CaseParams):
    # The prediction is computed by an *independent implementation* —
    # the streaming registry — so unlike the other relations this one
    # needs no engine re-mine at all; `mine` supplies the "got" side.
    del mine
    variants = [_streamed_run(rows, params, s) for s in STREAM_SHARDS]
    expected = list(variants[0])
    for shards, variant in zip(STREAM_SHARDS[1:], variants[1:]):
        if variant != variants[0]:
            expected.append(
                (("__shard-divergence__", f"shards={shards}"), -1, -1, ())
            )
    return expected


def _checkpoint_cut(rows: Rows, params: CaseParams, size: int,
                    shards: int) -> int:
    """A case-derived pseudo-random cut point in ``[0, size]``."""
    seed = repr((_stream_case_key(rows, params, shards), "cut"))
    return random.Random(seed).randrange(size + 1)


def _checkpoint_roundtrip(rows: Rows, params: CaseParams,
                          shards: int):
    """Checkpoint/restore/resume at a random cut vs. the uninterrupted
    stream.  Returns ``None`` when both futures are identical, else a
    marker entry naming the divergence."""
    import io

    from repro.streaming import ShardedMonitorRegistry, item_sort_key

    database = TransactionalDatabase(rows)
    if len(database) == 0:
        return None
    min_ps = resolve_count_threshold(params.min_ps, "min_ps", len(database))
    candidates = _stream_candidates(database)
    transactions = list(database)
    cut = _checkpoint_cut(rows, params, len(transactions), shards)

    emitted_full: List[tuple] = []
    emitted_resumed: List[tuple] = []

    def sink(log, gate):
        def fire(stream, item, interval):
            if gate[0]:
                log.append(
                    (item_sort_key(stream), item_sort_key(item), interval)
                )

        return fire

    # Uninterrupted future (intervals recorded only after the cut, to
    # compare against what the resumed registry emits).
    past_cut = [False]
    full = _stream_registry(params, min_ps, shards, candidates,
                            on_interval=sink(emitted_full, past_cut))
    _stream_feed(full, transactions, 0, cut)
    past_cut[0] = True
    _stream_feed(full, transactions, cut, len(transactions))
    final_full = io.StringIO()
    full.checkpoint(final_full)

    # Interrupted future: checkpoint at the cut, restore, resume.
    interrupted = _stream_registry(params, min_ps, shards, candidates)
    _stream_feed(interrupted, transactions, 0, cut)
    middle = io.StringIO()
    interrupted.checkpoint(middle)
    middle.seek(0)
    resumed = ShardedMonitorRegistry.restore(
        middle, on_interval=sink(emitted_resumed, [True])
    )
    _stream_feed(resumed, transactions, cut, len(transactions))
    final_resumed = io.StringIO()
    resumed.checkpoint(final_resumed)

    if final_resumed.getvalue() != final_full.getvalue():
        return (
            ("__checkpoint-divergence__", f"shards={shards}", f"cut={cut}"),
            -1, -1, (),
        )
    if emitted_resumed != emitted_full:
        return (
            ("__interval-emission-divergence__", f"shards={shards}",
             f"cut={cut}"),
            -1, -1, (),
        )
    return None


def _checkpoint_transform(rows: Rows, params: CaseParams):
    return list(rows), params


def _checkpoint_expected(mine: MineFn, rows: Rows, params: CaseParams):
    del mine
    expected = list(_streamed_run(rows, params, STREAM_SHARDS[0]))
    for shards in STREAM_SHARDS:
        marker = _checkpoint_roundtrip(rows, params, shards)
        if marker is not None:
            expected.append(marker)
    return expected


# ----------------------------------------------------------------------
# Out-of-core shard-merge relation (repro.shard vs. in-memory mining)
# ----------------------------------------------------------------------
#: Shard counts the shard-merge relation is checked at.
SHARD_MERGE_COUNTS: Tuple[int, ...] = (1, 3, 8)


def _adversarial_cuts(rows: Rows, params: CaseParams) -> Tuple[float, ...]:
    """Cut positions *inside* periodic runs — the stitch-stressing plan.

    Balanced sharding often lands its cuts in quiet gaps; the merge bug
    class lives at cuts that split a maximal run in two.  Interior
    occurrences of single-item runs (taken most-frequent item first)
    are exactly such positions: the planner cuts at a timestamp, so a
    cut at an interior occurrence ends the left shard mid-run.
    """
    from repro.core.intervals import _iter_runs

    database = TransactionalDatabase(rows)
    counts: Dict[object, int] = {}
    for _, itemset in database:
        for item in itemset:
            counts[item] = counts.get(item, 0) + 1
    cuts: List[float] = []
    seen = set()
    for item in sorted(counts, key=lambda i: (-counts[i], repr(i))):
        timestamps = database.timestamps_of([item])
        for start, end, _ in _iter_runs(timestamps, params.per):
            for ts in timestamps:
                if start <= ts < end and ts not in seen:
                    seen.add(ts)
                    cuts.append(ts)
    if not cuts:
        # No multi-occurrence run anywhere: cut between transactions.
        cuts = [transaction.ts for transaction in database][:-1]
    return tuple(cuts[:4])


#: Memo of sharded runs, keyed by (case, plan spec, engine, jobs) — the
#: sharded side exercises the engine under test, so cells don't share.
_SHARD_MEMO: Dict[tuple, list] = {}


def _sharded_canonical(
    rows: Rows, params: CaseParams, engine: str, jobs: int, plan_spec
) -> List[tuple]:
    """Canonical view of a sharded mine; ``plan_spec`` is a shard count
    or ``("cuts", <cut tuple>)``."""
    from repro.qa.differential import canonical
    from repro.shard import mine_sharded_database

    key = (_stream_case_key(rows, params, 0), plan_spec, engine, jobs)
    if key in _SHARD_MEMO:
        return _SHARD_MEMO[key]
    database = TransactionalDatabase(rows)
    per, min_ps, min_rec = params
    kwargs = (
        {"cuts": plan_spec[1]}
        if isinstance(plan_spec, tuple)
        else {"shards": plan_spec}
    )
    found, _, _, _ = mine_sharded_database(
        database, per, min_ps, min_rec, engine, jobs=jobs, **kwargs
    )
    result = canonical(found)
    if len(_SHARD_MEMO) > 256:
        _SHARD_MEMO.clear()
    _SHARD_MEMO[key] = result
    return result


def _shard_merge_transform(rows: Rows, params: CaseParams):
    return list(rows), params


def _shard_merge_expected(mine: MineFn, rows: Rows, params: CaseParams):
    # The "got" side is the engine's plain in-memory mine (identity
    # transform); the prediction re-mines through the sharded pipeline
    # with the *same* engine/jobs cell and flags any divergence, so a
    # merge bug is pinned to the cell that produced it.
    engine = getattr(mine, "engine", "rp-growth")
    jobs = getattr(mine, "jobs", 1)
    base = list(mine(rows, params))
    expected = list(base)
    plans = [(f"shards={s}", s) for s in SHARD_MERGE_COUNTS]
    adversarial = _adversarial_cuts(rows, params)
    if adversarial:
        plans.append((f"cuts={list(adversarial)}", ("cuts", adversarial)))
    for label, plan_spec in plans:
        variant = _sharded_canonical(rows, params, engine, jobs, plan_spec)
        if variant != base:
            expected.append(
                (("__shard-merge-divergence__", label), -1, -1, ())
            )
    return expected


RELATIONS: Tuple[MetamorphicRelation, ...] = (
    MetamorphicRelation(
        name="time-shift",
        description="global time shift by a constant",
        paper_basis=(
            "Definitions 4-8 use only inter-arrival differences; a "
            "global shift moves every interval boundary by the shift "
            "and nothing else"
        ),
        transform=_shift_transform,
        expected=_shift_expected,
    ),
    MetamorphicRelation(
        name="item-relabel",
        description="bijective relabeling of the item alphabet",
        paper_basis=(
            "items are opaque labels (Definition 1); a bijection "
            "relabels every pattern and preserves all metadata"
        ),
        transform=_relabel_transform,
        expected=_relabel_expected,
    ),
    MetamorphicRelation(
        name="time-scale",
        description="timestamps and per both scaled by a factor",
        paper_basis=(
            "Definition 4 compares iat <= per; scaling both sides by "
            "the same factor preserves every comparison and scales "
            "interval boundaries"
        ),
        transform=_scale_transform,
        expected=_scale_expected,
    ),
    MetamorphicRelation(
        name="concat-disjoint",
        description="append a time-disjoint shifted copy of the database",
        paper_basis=(
            "no periodic run spans a gap > per (Definition 5), so "
            "recurrence and support are additive over time-disjoint "
            "segments (Definition 8)"
        ),
        transform=_concat_transform,
        expected=_concat_expected,
    ),
    MetamorphicRelation(
        name="event-duplication",
        description="redundant re-statement of events within transactions",
        paper_basis=(
            "the series-to-TDB transformation groups events by "
            "timestamp into set-valued transactions (Section 3); "
            "multiplicity is invisible to the model"
        ),
        transform=_duplicate_transform,
        expected=_duplicate_expected,
    ),
    MetamorphicRelation(
        name="stream-batch",
        description=(
            "sharded streaming replay (shards 1/4/16, under eviction "
            "pressure) equals batch mining"
        ),
        paper_basis=(
            "the streaming monitor maintains Algorithm 1's per-item "
            "state incrementally, so feeding the database through "
            "repro.streaming must reproduce the batch RP-list exactly "
            "(incremental maintenance; Definitions 4-8)"
        ),
        transform=_stream_batch_transform,
        expected=_stream_batch_expected,
    ),
    MetamorphicRelation(
        name="stream-checkpoint-resume",
        description=(
            "checkpoint/restore/resume at a random cut is byte-"
            "identical to the uninterrupted stream (shards 1/4/16)"
        ),
        paper_basis=(
            "the monitor state (Algorithm 1's idl/ps/erec trio plus "
            "closed intervals) is the complete sufficient statistic "
            "of the prefix, so serializing and restoring it must not "
            "change any future output"
        ),
        transform=_checkpoint_transform,
        expected=_checkpoint_expected,
    ),
    MetamorphicRelation(
        name="shard-merge",
        description=(
            "out-of-core sharded mining (shards 1/3/8 plus adversarial "
            "cuts inside recurrence runs) equals in-memory mining"
        ),
        paper_basis=(
            "shards partition the time axis, so a pattern's global "
            "point sequence is the concatenation of its per-shard "
            "sequences; stitching runs whose gap across a cut is <= "
            "per recovers every maximal run, and re-applying minPS/"
            "minRec on the stitched runs recovers Definitions 5 and 8 "
            "exactly"
        ),
        transform=_shard_merge_transform,
        expected=_shard_merge_expected,
    ),
)


def get_relation(name: str) -> MetamorphicRelation:
    """The registered relation called ``name`` (KeyError if unknown)."""
    for relation in RELATIONS:
        if relation.name == name:
            return relation
    raise KeyError(f"unknown metamorphic relation {name!r}")


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
class RelationCase(NamedTuple):
    """One base case a relation is checked on."""

    label: str
    seed: Optional[int]
    rows: Tuple[Row, ...]
    params: CaseParams


def _resolved(rows: Rows, params: CaseParams) -> CaseParams:
    """Fix fractional ``min_ps`` against the base database size.

    Relations that change the transaction count (``concat-disjoint``)
    are only exact for absolute thresholds, so every case is resolved
    once, up front, against its *base* database.
    """
    size = len(TransactionalDatabase(rows))
    return CaseParams(
        params.per,
        resolve_count_threshold(params.min_ps, "min_ps", size),
        params.min_rec,
    )


def running_example_case() -> RelationCase:
    """The paper's Table 1 database at the paper's thresholds."""
    from repro.datasets import paper_running_example

    rows = tuple(
        (ts, tuple(sorted(items, key=repr)))
        for ts, items in paper_running_example()
    )
    return RelationCase("running-example", None, rows, CaseParams(2, 3, 2))


def default_case_corpus(
    n_random: int = 2, base_seed: int = BASE_SEED
) -> List[RelationCase]:
    """The running example plus ``n_random`` seeded random cases.

    Random seeds are offset from the differential sweep's so the two
    suites do not silently test the same databases.
    """
    cases = [running_example_case()]
    seed = base_seed + 100_000
    attempts = 0
    while len(cases) - 1 < n_random and attempts < 20 * max(1, n_random):
        attempts += 1
        seed += 1
        rng = random.Random(seed)
        rows = random_rows(rng)
        params = random_params(rng)
        if len(TransactionalDatabase(rows)) == 0:
            continue
        cases.append(
            RelationCase(
                f"random-{seed}", seed, tuple(rows),
                _resolved(rows, params),
            )
        )
    return cases


def engine_matrix(
    engines: Sequence[str] = ENGINES,
    jobs_values: Sequence[int] = (1, 2),
) -> List[Tuple[str, int]]:
    """Every (engine, jobs) combination the qa gate must exercise.

    Engines without the registry's ``supports_jobs`` capability (the
    single-process ``naive`` reference) appear with ``jobs=1`` only;
    the rest appear at every requested ``jobs`` level.
    """
    matrix = []
    for engine in engines:
        for jobs in jobs_values:
            if jobs > 1 and not get_engine(engine).supports_jobs:
                continue
            matrix.append((engine, jobs))
    return matrix


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelationViolation:
    """One violated relation prediction, already minimized."""

    relation: str
    engine: str
    jobs: int
    case: str
    seed: Optional[int]
    params: CaseParams
    rows: Tuple[Row, ...]
    minimized_rows: Tuple[Row, ...]
    expected: Tuple[tuple, ...]
    got: Tuple[tuple, ...]

    def reproducer(self) -> str:
        """Paste-ready snippet mining the shrunk base case."""
        return format_reproducer(
            list(self.minimized_rows), self.params, self.engine, self.jobs
        )

    def describe(self) -> str:
        """The full violation report the gate and the tests print."""
        seed = "-" if self.seed is None else str(self.seed)
        return (
            f"metamorphic relation {self.relation!r} violated by engine "
            f"{self.engine!r} (jobs={self.jobs}) on case {self.case!r}."
            f"\nseed: {seed}\nminimized base case (apply the relation's "
            f"transform to reproduce):\n{self.reproducer()}\n"
            f"expected: {list(self.expected)!r}\n"
            f"got:      {list(self.got)!r}"
        )

    def as_dict(self) -> dict:
        """JSON-ready form for the ``repro-qa/v1`` report."""
        return {
            "relation": self.relation,
            "engine": self.engine,
            "jobs": self.jobs,
            "case": self.case,
            "seed": self.seed,
            "params": {
                "per": self.params.per,
                "min_ps": self.params.min_ps,
                "min_rec": self.params.min_rec,
            },
            "minimized_rows": [list(row) for row in self.minimized_rows],
            "reproducer": self.reproducer(),
        }


class _MemoizedMiner:
    """Engine-bound canonical miner with per-check memoization.

    Invariant relations predict "same as base", so the checker would
    otherwise mine the base case twice per (engine, jobs) cell.
    """

    def __init__(self, engine: str, jobs: int):
        self.engine = engine
        self.jobs = jobs
        self._cache: Dict[tuple, Canonical] = {}

    def __call__(self, rows: Rows, params: CaseParams) -> Canonical:
        key = (tuple((ts, tuple(items)) for ts, items in rows), params)
        if key not in self._cache:
            self._cache[key] = mine_canonical(
                rows, params, self.engine, self.jobs
            )
        return self._cache[key]


def _violation_parts(
    relation: MetamorphicRelation,
    rows: Rows,
    params: CaseParams,
    mine: MineFn,
) -> Optional[Tuple[Canonical, Canonical]]:
    """``(expected, got)`` when the relation is violated, else ``None``."""
    if not rows or len(TransactionalDatabase(rows)) == 0:
        return None
    t_rows, t_params = relation.transform(rows, params)
    expected = relation.expected(mine, rows, params)
    got = mine(t_rows, t_params)
    if got == expected:
        return None
    return expected, got


def check_relation(
    relation: MetamorphicRelation,
    case: RelationCase,
    engine: str,
    jobs: int = 1,
    minimize: bool = True,
) -> Optional[RelationViolation]:
    """Check one relation on one case for one engine/jobs combination.

    Returns ``None`` on agreement, otherwise a minimized
    :class:`RelationViolation`: the base rows are greedily shrunk while
    the violation persists, so the reproducer is as small as the bug
    allows.
    """
    mine = _MemoizedMiner(engine, jobs)
    parts = _violation_parts(relation, case.rows, case.params, mine)
    if parts is None:
        return None
    rows = list(case.rows)
    if minimize:
        rows = minimize_case(
            rows,
            lambda trial: _violation_parts(
                relation, trial, case.params, _MemoizedMiner(engine, jobs)
            )
            is not None,
        )
        final = _violation_parts(
            relation, rows, case.params, _MemoizedMiner(engine, jobs)
        )
        if final is not None:
            parts = final
    expected, got = parts
    return RelationViolation(
        relation=relation.name,
        engine=engine,
        jobs=jobs,
        case=case.label,
        seed=case.seed,
        params=case.params,
        rows=tuple(case.rows),
        minimized_rows=tuple(rows),
        expected=tuple(expected),
        got=tuple(got),
    )


@dataclass(frozen=True)
class RelationCheck:
    """Per-(relation, engine, jobs) cell of the relations matrix."""

    relation: str
    engine: str
    jobs: int
    cases: int
    violations: int

    def as_dict(self) -> dict:
        """JSON-ready form for the ``repro-qa/v1`` report."""
        return {
            "relation": self.relation,
            "engine": self.engine,
            "jobs": self.jobs,
            "cases": self.cases,
            "violations": self.violations,
        }


@dataclass
class RelationsResult:
    """Outcome of a full relations sweep."""

    checks: List[RelationCheck] = field(default_factory=list)
    violations: List[RelationViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def cases_checked(self) -> int:
        return sum(check.cases for check in self.checks)


def run_relations(
    cases: Optional[Sequence[RelationCase]] = None,
    relations: Sequence[MetamorphicRelation] = RELATIONS,
    engines: Sequence[str] = ENGINES,
    jobs_values: Sequence[int] = (1, 2),
    minimize: bool = True,
    deadline: Optional[float] = None,
) -> RelationsResult:
    """Check every relation across the full engine/jobs matrix.

    Every (relation, engine, jobs) cell runs at least its first case
    even when ``deadline`` (an absolute :func:`time.monotonic` instant)
    has passed — the matrix coverage is the point of the gate; the
    budget only trims the per-cell case count.
    """
    if cases is None:
        cases = default_case_corpus()
    result = RelationsResult()
    for relation in relations:
        for engine, jobs in engine_matrix(engines, jobs_values):
            ran = 0
            violations = 0
            for index, case in enumerate(cases):
                if (
                    index > 0
                    and deadline is not None
                    and time.monotonic() >= deadline
                ):
                    break
                violation = check_relation(
                    relation, case, engine, jobs, minimize=minimize
                )
                ran += 1
                if violation is not None:
                    violations += 1
                    result.violations.append(violation)
            result.checks.append(
                RelationCheck(
                    relation=relation.name,
                    engine=engine,
                    jobs=jobs,
                    cases=ran,
                    violations=violations,
                )
            )
    return result
