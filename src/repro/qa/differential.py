"""Reusable differential-testing and case-minimization library.

PR 3 introduced a randomized differential harness as a test file; this
module promotes its machinery — the seeded case generator, the
canonical pattern view, the oracle comparison and the greedy
case-minimizer — into an importable API so that other conformance
tooling (the metamorphic-relation checker, the ``repro qa`` gate, ad
hoc debugging sessions) can reuse it instead of keeping private copies.

The naive exhaustive miner is the oracle: it evaluates Definition 9
directly, itemset by itemset, with no pruning to get wrong.  Every
pruning engine — and the parallel layer — must agree with it on any
database.

A *case* is ``(rows, params)``: raw ``(timestamp, itemset)`` rows (fed
to :class:`~repro.timeseries.database.TransactionalDatabase` verbatim)
plus a :class:`CaseParams` threshold triple.  Keeping raw rows rather
than a built database lets the minimizer delete rows one at a time and
exercises the constructor's merge/drop behaviour on every trial.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.engines import PARALLEL_ENGINES, get_engine
from repro.core.miner import mine_recurring_patterns
from repro.core.naive import mine_recurring_patterns_naive
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "ALPHABET",
    "BASE_SEED",
    "CaseParams",
    "DifferentialFailure",
    "DifferentialResult",
    "Row",
    "Rows",
    "canonical",
    "check_case",
    "disagrees_with_oracle",
    "format_reproducer",
    "minimize_case",
    "mine_canonical",
    "oracle_canonical",
    "random_params",
    "random_rows",
    "run_differential",
]

#: Items the random generator draws from.
ALPHABET = "abcdefg"

#: Default base seed; case ``i`` uses ``BASE_SEED + i``, so any failure
#: names a single integer that reproduces it forever.
BASE_SEED = 20150323

#: One raw database row: a timestamp plus an iterable of items (a plain
#: string means its characters, as the database constructor documents).
Row = Tuple[float, Sequence]

Rows = Sequence[Row]


class CaseParams(NamedTuple):
    """The threshold triple of one differential case.

    Unpacks like the plain ``(per, min_ps, min_rec)`` tuple it replaces.
    """

    per: Union[int, float]
    min_ps: Union[int, float]
    min_rec: int


# ----------------------------------------------------------------------
# Seeded generation
# ----------------------------------------------------------------------
def random_rows(rng: random.Random) -> List[Tuple[int, str]]:
    """Raw (timestamp, itemset-string) rows, deliberately messy.

    ``dense`` gaps produce duplicate timestamps (the database merges
    them into one transaction) and zero-density draws produce empty
    itemsets (the database drops them) — both documented constructor
    behaviours the engines must agree on.
    """
    n_items = rng.randint(2, len(ALPHABET))
    alphabet = ALPHABET[:n_items]
    n_rows = rng.randint(0, 40)
    gap_style = rng.choice(("dense", "uniform", "bursty"))
    density = rng.uniform(0.2, 0.9)
    rows = []
    timestamp = 0
    for _ in range(n_rows):
        if gap_style == "dense":
            timestamp += rng.randint(0, 2)
        elif gap_style == "uniform":
            timestamp += rng.randint(1, 6)
        else:
            timestamp += 1 if rng.random() < 0.7 else rng.randint(5, 15)
        itemset = "".join(
            item for item in alphabet if rng.random() < density
        )
        rows.append((timestamp, itemset))
    return rows


def random_params(rng: random.Random) -> CaseParams:
    """A random threshold triple in the model's useful small range."""
    per = rng.randint(1, 6)
    if rng.random() < 0.25:  # fractional minPS takes the resolve path
        min_ps: Union[int, float] = round(rng.uniform(0.05, 0.5), 3)
    else:
        min_ps = rng.randint(1, 4)
    min_rec = rng.randint(1, 3)
    return CaseParams(per, min_ps, min_rec)


# ----------------------------------------------------------------------
# Canonical views and mining helpers
# ----------------------------------------------------------------------
def canonical(patterns) -> List[tuple]:
    """An order-independent, metadata-complete view of a pattern set.

    Each entry is ``(sorted item strings, support, recurrence, interval
    tuple)``; two engines mined the same model iff their canonical
    views are equal.
    """
    return sorted(
        (
            tuple(sorted(str(item) for item in pattern.items)),
            pattern.support,
            pattern.recurrence,
            tuple(pattern.intervals),
        )
        for pattern in patterns
    )


def mine_canonical(
    rows: Rows, params: CaseParams, engine: str, jobs: int = 1
) -> List[tuple]:
    """Build a database from raw rows, mine it, return the canonical view."""
    database = TransactionalDatabase(rows)
    per, min_ps, min_rec = params
    return canonical(
        mine_recurring_patterns(
            database, per, min_ps, min_rec, engine=engine, jobs=jobs
        )
    )


def oracle_canonical(rows: Rows, params: CaseParams) -> List[tuple]:
    """The naive exhaustive miner's canonical view of a case."""
    database = TransactionalDatabase(rows)
    per, min_ps, min_rec = params
    return canonical(
        mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    )


def disagrees_with_oracle(
    rows: Rows, params: CaseParams, engine: str, jobs: int = 1
) -> bool:
    """True when ``engine`` disagrees with the naive oracle on the case.

    Empty databases never count as a disagreement (there is nothing to
    mine), which keeps the minimizer from shrinking into vacuity.
    """
    database = TransactionalDatabase(rows)
    if len(database) == 0:
        return False
    per, min_ps, min_rec = params
    oracle = canonical(
        mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    )
    return mine_canonical(rows, params, engine, jobs) != oracle


# ----------------------------------------------------------------------
# Case minimization
# ----------------------------------------------------------------------
def minimize_case(
    rows: Rows, predicate: Callable[[List[Row]], bool]
) -> List[Row]:
    """Greedy one-row-at-a-time shrink preserving ``predicate(rows)``.

    ``predicate`` is any property of a row list — "engine X disagrees
    with the oracle", "relation R is violated" — that held on the input
    and should still hold on the returned sublist.  Rows are removed
    one at a time, restarting after every successful removal, until no
    single-row deletion preserves the property.  The result is
    1-minimal: deleting any one remaining row makes the failure vanish,
    which is what makes the printed reproducers small enough to read.

    The input rows are not modified.  If ``predicate`` does not hold on
    the input, the input is returned unchanged (there is nothing to
    preserve).
    """
    rows = list(rows)
    if not predicate(rows):
        return rows
    shrinking = True
    while shrinking:
        shrinking = False
        for index in range(len(rows)):
            trial = rows[:index] + rows[index + 1:]
            if predicate(trial):
                rows = trial
                shrinking = True
                break
    return rows


def format_reproducer(
    rows: Rows, params: CaseParams, engine: str, jobs: int
) -> str:
    """A paste-ready snippet that reruns a (minimized) failing case."""
    per, min_ps, min_rec = params
    return (
        f"rows = {list(rows)!r}\n"
        f"db = TransactionalDatabase(rows)\n"
        f"mine_recurring_patterns(db, per={per!r}, min_ps={min_ps!r}, "
        f"min_rec={min_rec!r}, engine={engine!r}, jobs={jobs!r})"
    )


# ----------------------------------------------------------------------
# The differential sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DifferentialFailure:
    """One engine/oracle disagreement, already minimized."""

    seed: int
    engine: str
    jobs: int
    params: CaseParams
    rows: Tuple[Row, ...]
    minimized_rows: Tuple[Row, ...]
    oracle: Tuple[tuple, ...]
    got: Tuple[tuple, ...]

    def reproducer(self) -> str:
        """The paste-ready snippet for the minimized case."""
        return format_reproducer(
            list(self.minimized_rows), self.params, self.engine, self.jobs
        )

    def describe(self) -> str:
        """The full failure report the tests print on disagreement."""
        return (
            f"engine {self.engine!r} (jobs={self.jobs}) disagrees with "
            f"the naive oracle.\nseed: {self.seed}\n"
            f"minimized reproducer:\n{self.reproducer()}\n"
            f"oracle: {list(self.oracle)!r}\ngot:    {list(self.got)!r}"
        )

    def as_dict(self) -> dict:
        """JSON-ready form for the ``repro-qa/v1`` report."""
        return {
            "seed": self.seed,
            "engine": self.engine,
            "jobs": self.jobs,
            "params": {
                "per": self.params.per,
                "min_ps": self.params.min_ps,
                "min_rec": self.params.min_rec,
            },
            "minimized_rows": [list(row) for row in self.minimized_rows],
            "reproducer": self.reproducer(),
        }


@dataclass
class DifferentialResult:
    """Outcome of one differential sweep."""

    cases: int = 0
    checks: int = 0
    skipped_empty: int = 0
    failures: List[DifferentialFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def check_case(
    seed: int,
    rows: Rows,
    params: CaseParams,
    engines: Sequence[str] = PARALLEL_ENGINES,
    jobs_values: Sequence[int] = (1,),
    minimize: bool = True,
) -> Tuple[int, List[DifferentialFailure]]:
    """Check one case against the oracle for every engine/jobs combo.

    Returns ``(checks_run, failures)``.  Each failure is minimized with
    :func:`minimize_case` when ``minimize`` is true (differential
    sweeps leave it on; callers in a hurry can skip the shrink).
    """
    database = TransactionalDatabase(rows)
    if len(database) == 0:
        return 0, []
    per, min_ps, min_rec = params
    oracle = canonical(
        mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    )
    checks = 0
    failures: List[DifferentialFailure] = []
    for engine in engines:
        for jobs in jobs_values:
            if jobs > 1 and not get_engine(engine).supports_jobs:
                continue
            checks += 1
            got = mine_canonical(rows, params, engine, jobs)
            if got == oracle:
                continue
            minimal = (
                minimize_case(
                    rows,
                    lambda trial: disagrees_with_oracle(
                        trial, params, engine, jobs
                    ),
                )
                if minimize
                else list(rows)
            )
            failures.append(
                DifferentialFailure(
                    seed=seed,
                    engine=engine,
                    jobs=jobs,
                    params=params,
                    rows=tuple(rows),
                    minimized_rows=tuple(minimal),
                    oracle=tuple(oracle),
                    got=tuple(got),
                )
            )
    return checks, failures


def run_differential(
    n_cases: int = 50,
    base_seed: int = BASE_SEED,
    engines: Sequence[str] = PARALLEL_ENGINES,
    jobs_values: Sequence[int] = (1,),
    deadline: Optional[float] = None,
    minimize: bool = True,
) -> DifferentialResult:
    """Run a seeded differential sweep of ``n_cases`` random cases.

    ``deadline`` is an absolute :func:`time.monotonic` instant; the
    sweep stops cleanly (cases run so far are reported) once it passes,
    which is how the ``repro qa`` gate fits the sweep into its time
    budget.  Failures do not stop the sweep — all disagreements across
    the requested matrix are collected and minimized.
    """
    result = DifferentialResult()
    for case in range(n_cases):
        if deadline is not None and time.monotonic() >= deadline:
            break
        seed = base_seed + case
        rng = random.Random(seed)
        rows = random_rows(rng)
        params = random_params(rng)
        if len(TransactionalDatabase(rows)) == 0:
            result.cases += 1
            result.skipped_empty += 1
            continue
        checks, failures = check_case(
            seed, rows, params,
            engines=engines, jobs_values=jobs_values, minimize=minimize,
        )
        result.cases += 1
        result.checks += checks
        result.failures.extend(failures)
    return result
