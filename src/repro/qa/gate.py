"""The conformance gate: relations + goldens + differential, budgeted.

:func:`run_qa` is what the ``repro qa`` CLI subcommand (and the CI
nightly job) executes.  It runs the three conformance suites in a
fixed order of decreasing priority —

1. **metamorphic relations** across the full engine × jobs matrix
   (every cell runs at least once regardless of budget; the budget
   only trims per-cell case counts),
2. the **golden corpus** (snapshot comparison, diff-style failures),
3. a **differential sweep** against the naive oracle with whatever
   time remains —

and packages the outcome as a :class:`QAReport` whose
:meth:`~QAReport.as_record` is the machine-readable ``repro-qa/v1``
document (validated by
:func:`repro.obs.report.validate_qa_record`, written through the same
:class:`~repro.obs.report.TraceWriter` sink as ``repro-run/v1``
records).  Every failure carries a seeded, greedily minimized
reproducer, so a red gate is a one-paste bug report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.engines import ENGINES, PARALLEL_ENGINES
from repro.qa.differential import (
    BASE_SEED,
    DifferentialResult,
    run_differential,
)
from repro.qa.golden import GoldenResult, run_goldens, update_goldens
from repro.qa.relations import (
    RELATIONS,
    RelationsResult,
    default_case_corpus,
    engine_matrix,
    run_relations,
)

__all__ = ["QAConfig", "QAReport", "run_qa"]

#: Fraction of the budget reserved for the relations phase; goldens run
#: unbudgeted (they are a fixed, small amount of work) and the
#: differential sweep absorbs whatever is left.
_RELATIONS_BUDGET_SHARE = 0.6

_SECTIONS = ("relations", "golden", "differential")


@dataclass(frozen=True)
class QAConfig:
    """Knobs of one gate run."""

    #: Soft wall-clock budget in seconds.  The mandatory relation
    #: matrix always completes; optional work (extra relation cases,
    #: differential cases) stops once the budget is spent.
    budget: float = 120.0
    #: Base seed for every randomized suite; reports name it so any
    #: failure reproduces forever.
    seed: int = BASE_SEED
    #: Where the golden snapshots live (``None`` = repo default).
    golden_dir: Optional[str] = None
    #: Engines to exercise.
    engines: Sequence[str] = ENGINES
    #: Worker counts for the relation matrix (``naive`` runs jobs=1
    #: only, by design).
    jobs_values: Sequence[int] = (1, 2)
    #: Random relation cases on top of the running example.
    relation_cases: int = 2
    #: Cap on differential cases (the budget usually binds first).
    differential_cases: int = 50
    #: Greedily shrink failing cases before reporting.
    minimize: bool = True
    #: Suites to skip entirely (subset of relations/golden/differential).
    skip: Tuple[str, ...] = ()
    #: Rewrite golden snapshots instead of checking them.
    update_golden: bool = False
    #: Optional callback invoked with one line at each suite boundary
    #: ("relations...", "relations done in 1.2s", ...) — the CLI's
    #: ``--progress`` wires a stderr printer here so a budgeted run is
    #: never silent for minutes.
    on_progress: Optional[Callable[[str], None]] = None

    def __post_init__(self) -> None:
        for section in self.skip:
            if section not in _SECTIONS:
                raise ValueError(
                    f"unknown qa section {section!r}; "
                    f"expected one of {_SECTIONS}"
                )


@dataclass
class QAReport:
    """Everything one gate run measured and found."""

    config: QAConfig
    seconds: float = 0.0
    relations: RelationsResult = field(default_factory=RelationsResult)
    golden: GoldenResult = field(default_factory=GoldenResult)
    differential: DifferentialResult = field(
        default_factory=DifferentialResult
    )
    skipped: Tuple[str, ...] = ()
    golden_written: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return (
            self.relations.passed
            and self.golden.passed
            and self.differential.passed
        )

    def matrix_complete(self) -> bool:
        """True when every relation × engine × jobs cell ran ≥ 1 case."""
        if "relations" in self.skipped:
            return False
        expected = {
            (relation.name, engine, jobs)
            for relation in RELATIONS
            for engine, jobs in engine_matrix(
                self.config.engines, self.config.jobs_values
            )
        }
        ran = {
            (check.relation, check.engine, check.jobs)
            for check in self.relations.checks
            if check.cases >= 1
        }
        return expected <= ran

    # -- sinks ---------------------------------------------------------
    def as_record(self) -> dict:
        """The ``repro-qa/v1`` record (see docs/observability.md)."""
        from repro.obs.report import QA_SCHEMA

        return {
            "schema": QA_SCHEMA,
            "kind": "qa",
            "passed": self.passed,
            "seconds": self.seconds,
            "budget_seconds": float(self.config.budget),
            "seed": self.config.seed,
            "skipped": list(self.skipped),
            "relations": {
                "matrix_complete": self.matrix_complete(),
                "checks": [c.as_dict() for c in self.relations.checks],
                "violations": [
                    v.as_dict() for v in self.relations.violations
                ],
            },
            "golden": {
                "checks": [c.as_dict() for c in self.golden.checks],
            },
            "differential": {
                "cases": self.differential.cases,
                "checks": self.differential.checks,
                "skipped_empty": self.differential.skipped_empty,
                "failures": [
                    f.as_dict() for f in self.differential.failures
                ],
            },
        }

    def summary_table(self) -> str:
        """Human-readable gate summary (section totals + failures)."""
        from repro.bench.reporting import format_table

        rows = [
            [
                "relations",
                "skipped" if "relations" in self.skipped else (
                    f"{self.relations.cases_checked} checks, "
                    f"{len(self.relations.violations)} violations"
                ),
                _status("relations" in self.skipped,
                        self.relations.passed),
            ],
            [
                "golden",
                "skipped" if "golden" in self.skipped else (
                    f"{len(self.golden.checks)} checks, "
                    f"{len(self.golden.failures)} failures"
                ),
                _status("golden" in self.skipped, self.golden.passed),
            ],
            [
                "differential",
                "skipped" if "differential" in self.skipped else (
                    f"{self.differential.cases} cases, "
                    f"{len(self.differential.failures)} failures"
                ),
                _status("differential" in self.skipped,
                        self.differential.passed),
            ],
        ]
        verdict = "PASS" if self.passed else "FAIL"
        table = format_table(
            ["suite", "outcome", "status"],
            rows,
            title=(
                f"qa gate {verdict} in {self.seconds:.1f}s "
                f"(budget {self.config.budget:g}s, seed {self.config.seed})"
            ),
        )
        failures = self.failure_reports()
        if failures:
            table += "\n\n" + "\n\n".join(failures)
        return table

    def failure_reports(self) -> List[str]:
        """Full per-failure reports, reproducers included."""
        reports = [v.describe() for v in self.relations.violations]
        reports.extend(
            f"golden {check.name!r} mismatch under engine "
            f"{check.engine!r}:\n{check.detail}"
            for check in self.golden.failures
        )
        reports.extend(f.describe() for f in self.differential.failures)
        return reports


def _status(skipped: bool, passed: bool) -> str:
    if skipped:
        return "skip"
    return "ok" if passed else "FAIL"


def run_qa(config: Optional[QAConfig] = None) -> QAReport:
    """Run the conformance gate and return its report."""
    config = config if config is not None else QAConfig()
    started = time.monotonic()
    hard_deadline = started + config.budget
    report = QAReport(config=config)
    skipped: List[str] = list(config.skip)

    def _tell(text: str) -> None:
        if config.on_progress is not None:
            config.on_progress(text)

    if "relations" not in skipped:
        relations_deadline = started + config.budget * _RELATIONS_BUDGET_SHARE
        _tell(
            f"qa: relations (engines={','.join(config.engines)}, "
            f"jobs={list(config.jobs_values)})..."
        )
        suite_started = time.monotonic()
        report.relations = run_relations(
            cases=default_case_corpus(
                n_random=config.relation_cases, base_seed=config.seed
            ),
            engines=config.engines,
            jobs_values=config.jobs_values,
            minimize=config.minimize,
            deadline=relations_deadline,
        )
        _tell(
            f"qa: relations {'passed' if report.relations.passed else 'FAILED'} "
            f"in {time.monotonic() - suite_started:.1f}s"
        )

    if "golden" not in skipped:
        _tell("qa: golden corpus...")
        suite_started = time.monotonic()
        if config.update_golden:
            report.golden_written = tuple(
                update_goldens(config.golden_dir)
            )
        report.golden = run_goldens(config.golden_dir)
        _tell(
            f"qa: golden {'passed' if report.golden.passed else 'FAILED'} "
            f"in {time.monotonic() - suite_started:.1f}s"
        )

    if "differential" not in skipped:
        engines = [e for e in config.engines if e in PARALLEL_ENGINES]
        _tell(
            f"qa: differential sweep (<= {config.differential_cases} "
            f"cases, budget-bound)..."
        )
        suite_started = time.monotonic()
        report.differential = run_differential(
            n_cases=config.differential_cases,
            base_seed=config.seed,
            engines=engines,
            jobs_values=(1,),
            deadline=hard_deadline,
            minimize=config.minimize,
        )
        _tell(
            f"qa: differential "
            f"{'passed' if report.differential.passed else 'FAILED'} "
            f"in {time.monotonic() - suite_started:.1f}s"
        )

    report.skipped = tuple(skipped)
    report.seconds = time.monotonic() - started
    return report
