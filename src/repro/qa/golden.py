"""Golden (snapshot) corpus: frozen pattern sets for pinned inputs.

Metamorphic relations and differential sweeps catch *inconsistencies*;
they cannot catch a bug that changes every engine identically — a
mutation in :mod:`repro.core.intervals`, the single source of truth
for the interval mathematics, moves all engines (and the naive oracle)
in lockstep.  The golden corpus closes that hole: the exact mined
pattern set for the paper's running example and for the synthetic
generators at pinned seeds is frozen into version-controlled JSON
files, and every gate run re-mines the inputs and compares.

A golden file (schema ``repro-qa-golden/v1``) records the case name,
the thresholds, the engine that wrote it and the full canonical
pattern list.  Failures produce a diff-style report (missing /
unexpected / changed patterns) instead of a bare assertion, and
``repro qa --update-golden`` (or ``pytest tests/qa --update-golden``)
rewrites the snapshots after an *intentional* model change — see
``docs/testing.md`` for the refresh workflow.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engines import ENGINES, get_engine
from repro.core.model import PeriodicInterval
from repro.exceptions import DataFormatError
from repro.qa.differential import CaseParams, canonical, mine_canonical
from repro.timeseries.database import TransactionalDatabase

__all__ = [
    "GOLDEN_SCHEMA",
    "GOLDEN_CASES",
    "GoldenCase",
    "GoldenCheck",
    "GoldenResult",
    "check_goldens",
    "default_golden_dir",
    "get_golden_case",
    "golden_diff",
    "golden_path",
    "read_golden",
    "run_goldens",
    "update_goldens",
    "write_golden",
]

#: Schema tag carried by every golden snapshot file.
GOLDEN_SCHEMA = "repro-qa-golden/v1"

#: Engines cheap enough to re-mine every golden case on every gate run:
#: every registered non-exhaustive engine (the exhaustive reference is
#: opted in per case, as the running example does below).
_PRUNING_ENGINES = tuple(
    name for name in ENGINES if not get_engine(name).exhaustive
)


@dataclass(frozen=True)
class GoldenCase:
    """One pinned input with a frozen expected pattern set."""

    name: str
    description: str
    factory: Callable[[], TransactionalDatabase]
    params: CaseParams
    #: Engines the snapshot is checked against on every gate run.  The
    #: naive reference only joins on inputs small enough to enumerate.
    engines: Tuple[str, ...] = _PRUNING_ENGINES


def _running_example() -> TransactionalDatabase:
    from repro.datasets import paper_running_example

    return paper_running_example()


def _planted() -> TransactionalDatabase:
    from repro.datasets import generate_planted_workload

    return generate_planted_workload(seed=42).database


def _quest_micro() -> TransactionalDatabase:
    from repro.bench.workloads import quest_workload

    return quest_workload(scale=0.001, seed=11)


def _clickstream_micro() -> TransactionalDatabase:
    from repro.bench.workloads import clickstream_workload

    return clickstream_workload(scale=0.05, seed=3)


GOLDEN_CASES: Tuple[GoldenCase, ...] = (
    GoldenCase(
        name="running-example",
        description="the paper's Table 1 database at the Table 2 thresholds",
        factory=_running_example,
        params=CaseParams(per=2, min_ps=3, min_rec=2),
        engines=_PRUNING_ENGINES + ("naive",),
    ),
    GoldenCase(
        name="planted",
        description="planted-pattern workload, seed 42, generator thresholds",
        factory=_planted,
        params=CaseParams(per=5, min_ps=4, min_rec=2),
    ),
    GoldenCase(
        name="quest-micro",
        description="Quest workload at scale 0.001, seed 11",
        factory=_quest_micro,
        params=CaseParams(per=2, min_ps=2, min_rec=2),
    ),
    GoldenCase(
        name="clickstream-micro",
        description="clickstream workload at scale 0.05, seed 3",
        factory=_clickstream_micro,
        params=CaseParams(per=3, min_ps=25, min_rec=2),
    ),
)


def get_golden_case(name: str) -> GoldenCase:
    """The golden case called ``name`` (KeyError if unknown)."""
    for case in GOLDEN_CASES:
        if case.name == name:
            return case
    raise KeyError(f"unknown golden case {name!r}")


def default_golden_dir() -> str:
    """``tests/qa/golden`` of the repository this package sits in.

    Resolved relative to this file (``src/repro/qa/golden.py`` →
    ``<repo>/tests/qa/golden``) so the CLI finds the corpus no matter
    what the working directory is.  When the package is installed
    without its test tree the directory simply does not exist and the
    golden suite reports itself as skipped.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "tests", "qa", "golden")


def golden_path(directory: str, name: str) -> str:
    """The snapshot file path for case ``name`` under ``directory``."""
    return os.path.join(directory, f"{name}.json")


# ----------------------------------------------------------------------
# Snapshot serialization
# ----------------------------------------------------------------------
def _canonical_to_json(patterns: Sequence[tuple]) -> List[dict]:
    return [
        {
            "items": list(items),
            "support": support,
            "intervals": [
                [iv.start, iv.end, iv.periodic_support] for iv in intervals
            ],
        }
        for items, support, _recurrence, intervals in patterns
    ]


def _canonical_from_json(records: Sequence[dict]) -> List[tuple]:
    return sorted(
        (
            tuple(record["items"]),
            record["support"],
            len(record["intervals"]),
            tuple(
                PeriodicInterval(start, end, ps)
                for start, end, ps in record["intervals"]
            ),
        )
        for record in records
    )


def write_golden(
    case: GoldenCase, directory: str, engine: str = "rp-growth"
) -> str:
    """Mine the case with ``engine`` and (re)write its snapshot file."""
    database = case.factory()
    per, min_ps, min_rec = case.params
    from repro.core.miner import mine_recurring_patterns

    patterns = canonical(
        mine_recurring_patterns(
            database, per, min_ps, min_rec, engine=engine
        )
    )
    os.makedirs(directory, exist_ok=True)
    path = golden_path(directory, case.name)
    document = {
        "schema": GOLDEN_SCHEMA,
        "name": case.name,
        "description": case.description,
        "engine": engine,
        "params": {"per": per, "min_ps": min_ps, "min_rec": min_rec},
        "patterns": _canonical_to_json(patterns),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def read_golden(name: str, directory: str) -> Tuple[dict, List[tuple]]:
    """Load a snapshot: the raw document and the canonical pattern list.

    Raises :class:`~repro.exceptions.DataFormatError` when the file is
    not a valid ``repro-qa-golden/v1`` document or its parameters no
    longer match the registered case (a stale snapshot is an error, not
    a silent pass).
    """
    path = golden_path(directory, name)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != GOLDEN_SCHEMA:
        raise DataFormatError(
            f"{path}: schema {document.get('schema')!r} != {GOLDEN_SCHEMA!r}"
        )
    for key in ("name", "params", "patterns"):
        if key not in document:
            raise DataFormatError(f"{path}: missing key {key!r}")
    case = get_golden_case(name)
    per, min_ps, min_rec = case.params
    recorded = document["params"]
    if recorded != {"per": per, "min_ps": min_ps, "min_rec": min_rec}:
        raise DataFormatError(
            f"{path}: snapshot was written at {recorded!r} but the "
            f"registered case uses {case.params!r}; refresh the golden "
            "corpus (repro qa --update-golden)"
        )
    return document, _canonical_from_json(document["patterns"])


def golden_diff(
    expected: Sequence[tuple], actual: Sequence[tuple]
) -> str:
    """A diff-style report between two canonical pattern lists.

    One line per difference: ``- missing`` (in the snapshot, not
    mined), ``+ unexpected`` (mined, not in the snapshot) and
    ``~ changed`` (same itemset, different metadata).  Empty string
    when the lists agree.
    """
    def by_items(patterns: Sequence[tuple]) -> Dict[tuple, tuple]:
        return {entry[0]: entry for entry in patterns}

    def render(entry: tuple) -> str:
        items, support, recurrence, intervals = entry
        body = ", ".join(str(iv) for iv in intervals)
        return (
            f"{' '.join(items)} [support={support}, "
            f"recurrence={recurrence}, {{{body}}}]"
        )

    want = by_items(expected)
    got = by_items(actual)
    lines: List[str] = []
    for items in sorted(set(want) - set(got)):
        lines.append(f"- missing:    {render(want[items])}")
    for items in sorted(set(got) - set(want)):
        lines.append(f"+ unexpected: {render(got[items])}")
    for items in sorted(set(want) & set(got)):
        if want[items] != got[items]:
            lines.append(f"~ changed:    expected {render(want[items])}")
            lines.append(f"              mined    {render(got[items])}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoldenCheck:
    """Outcome of re-mining one golden case with one engine."""

    name: str
    engine: str
    status: str  # "pass" | "fail" | "skip" | "error"
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready form for the ``repro-qa/v1`` report."""
        record = {
            "name": self.name,
            "engine": self.engine,
            "status": self.status,
        }
        if self.detail:
            record["detail"] = self.detail
        return record


@dataclass
class GoldenResult:
    """Outcome of a golden-corpus sweep."""

    checks: List[GoldenCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.status in ("pass", "skip") for c in self.checks)

    @property
    def failures(self) -> List[GoldenCheck]:
        return [c for c in self.checks if c.status not in ("pass", "skip")]


def check_goldens(
    case: GoldenCase,
    directory: str,
    engines: Optional[Sequence[str]] = None,
) -> List[GoldenCheck]:
    """Re-mine one case with every engine and compare to its snapshot."""
    engines = tuple(engines) if engines is not None else case.engines
    path = golden_path(directory, case.name)
    if not os.path.exists(path):
        return [
            GoldenCheck(
                case.name, engine, "skip",
                f"no snapshot at {path}; run with --update-golden",
            )
            for engine in engines
        ]
    try:
        _, expected = read_golden(case.name, directory)
    except (OSError, ValueError) as error:
        return [
            GoldenCheck(case.name, engine, "error", str(error))
            for engine in engines
        ]
    database = case.factory()
    rows = tuple(
        (ts, tuple(sorted(items, key=repr))) for ts, items in database
    )
    checks = []
    for engine in engines:
        actual = mine_canonical(rows, case.params, engine, jobs=1)
        if actual == expected:
            checks.append(GoldenCheck(case.name, engine, "pass"))
        else:
            checks.append(
                GoldenCheck(
                    case.name, engine, "fail",
                    golden_diff(expected, actual),
                )
            )
    return checks


def run_goldens(
    directory: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
) -> GoldenResult:
    """Check every registered golden case (or the named subset)."""
    directory = directory if directory is not None else default_golden_dir()
    result = GoldenResult()
    for case in GOLDEN_CASES:
        if names is not None and case.name not in names:
            continue
        result.checks.extend(check_goldens(case, directory))
    return result


def update_goldens(
    directory: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    engine: str = "rp-growth",
) -> List[str]:
    """Rewrite the snapshot files; returns the paths written."""
    directory = directory if directory is not None else default_golden_dir()
    paths = []
    for case in GOLDEN_CASES:
        if names is not None and case.name not in names:
            continue
        paths.append(write_golden(case, directory, engine=engine))
    return paths
