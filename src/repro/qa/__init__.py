"""Conformance QA subsystem: the correctness analogue of ``repro.obs``.

The paper's central claim — that the Erec-pruned engines return exactly
the recurring patterns of Definitions 1–9 — is guarded here by three
complementary suites, runnable together as one budgeted gate
(``repro qa`` on the command line, :func:`repro.qa.run_qa` from code):

:mod:`repro.qa.relations`
    Metamorphic relations: input transformations (time shift, item
    relabeling, time scaling, disjoint concatenation, event
    duplication) whose effect on the mined pattern set the model
    predicts exactly, checked per engine and per ``jobs`` level.
:mod:`repro.qa.golden`
    Golden corpus: frozen pattern-set snapshots for pinned inputs,
    with diff-style failure reports and ``--update-golden`` refresh
    tooling.  Catches semantics drift that moves *all* engines at once.
:mod:`repro.qa.differential`
    Reusable differential-testing library: the seeded case generator,
    naive-oracle comparison and greedy case-minimizer, importable by
    tests and by the other suites so every failure ships a minimized
    reproducer.

See ``docs/testing.md`` for the catalog of relations with their
paper-definition justifications and the golden refresh workflow.
"""

from repro.qa.differential import (
    BASE_SEED,
    CaseParams,
    DifferentialFailure,
    DifferentialResult,
    canonical,
    format_reproducer,
    mine_canonical,
    minimize_case,
    random_params,
    random_rows,
    run_differential,
)
from repro.qa.gate import QAConfig, QAReport, run_qa
from repro.qa.golden import (
    GOLDEN_CASES,
    GoldenCase,
    GoldenResult,
    golden_diff,
    run_goldens,
    update_goldens,
)
from repro.qa.relations import (
    RELATIONS,
    MetamorphicRelation,
    RelationViolation,
    RelationsResult,
    check_relation,
    default_case_corpus,
    engine_matrix,
    get_relation,
    run_relations,
)

__all__ = [
    "BASE_SEED",
    "CaseParams",
    "DifferentialFailure",
    "DifferentialResult",
    "GOLDEN_CASES",
    "GoldenCase",
    "GoldenResult",
    "MetamorphicRelation",
    "QAConfig",
    "QAReport",
    "RELATIONS",
    "RelationViolation",
    "RelationsResult",
    "canonical",
    "check_relation",
    "default_case_corpus",
    "engine_matrix",
    "format_reproducer",
    "get_relation",
    "golden_diff",
    "mine_canonical",
    "minimize_case",
    "random_params",
    "random_rows",
    "run_differential",
    "run_goldens",
    "run_qa",
    "run_relations",
    "update_goldens",
]
