"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one base class.  Parameter
problems additionally derive from :class:`ValueError` and data problems
from :class:`ValueError` as well, which keeps the library friendly to
code that only expects the built-in types.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataFormatError",
    "EmptyDatabaseError",
    "SearchSpaceError",
    "ChunkFailedError",
    "QAGateError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A mining or generation parameter is out of its documented domain.

    Examples: a negative ``per``, ``min_ps`` of zero, a fraction
    threshold outside ``(0, 1]``.
    """


class DataFormatError(ReproError, ValueError):
    """Input data violates the documented format.

    Examples: an event file line with no timestamp, a transaction with
    an unparsable timestamp, unsorted input where sorted input was
    promised.
    """


class EmptyDatabaseError(ReproError, ValueError):
    """An operation that needs at least one transaction got none."""


class SearchSpaceError(ReproError, RuntimeError):
    """The requested exhaustive search would be astronomically large.

    Raised by the reference (naive) miner when the item universe exceeds
    its configured limit; the purpose of that miner is ground-truth
    verification on small inputs, not production mining.
    """


class ChunkFailedError(ReproError, RuntimeError):
    """A parallel mining chunk failed after exhausting its retries.

    Raised by the resilience layer (``repro.parallel.resilience``) in
    ``fallback="raise"`` mode instead of surfacing a bare
    ``BrokenProcessPool``: it names exactly which search-space prefixes
    were lost and carries everything that *was* mined, so callers can
    degrade gracefully.

    Attributes
    ----------
    failed_prefixes:
        The search-space prefixes (first items for the vertical
        engines, suffix items for RP-growth) whose chunks could not be
        mined, as strings.
    partial:
        A ``RecurringPatternSet`` holding every pattern recovered from
        the chunks that did succeed (plus, for RP-growth, the
        1-extension patterns of the serial header sweep).  The set is
        complete for every prefix *not* listed in ``failed_prefixes``.
    events:
        The ``FaultEvent`` log of the run — one entry per retry and
        per exhausted chunk, in occurrence order.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_prefixes=(),
        partial=None,
        events=(),
    ):
        super().__init__(message)
        self.failed_prefixes = tuple(failed_prefixes)
        self.partial = partial
        self.events = tuple(events)


class QAGateError(ReproError, RuntimeError):
    """The conformance gate (``repro.qa``) found violations.

    Raised by callers that run the gate programmatically and want a
    failure to be an exception rather than an exit code.  Carries the
    full :class:`~repro.qa.gate.QAReport`, whose
    ``failure_reports()`` include a minimized reproducer per finding.

    Attributes
    ----------
    report:
        The :class:`~repro.qa.gate.QAReport` of the failed run.
    """

    def __init__(self, message: str, *, report=None):
        super().__init__(message)
        self.report = report
