"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch one base class.  Parameter
problems additionally derive from :class:`ValueError` and data problems
from :class:`ValueError` as well, which keeps the library friendly to
code that only expects the built-in types.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "DataFormatError",
    "EmptyDatabaseError",
    "SearchSpaceError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A mining or generation parameter is out of its documented domain.

    Examples: a negative ``per``, ``min_ps`` of zero, a fraction
    threshold outside ``(0, 1]``.
    """


class DataFormatError(ReproError, ValueError):
    """Input data violates the documented format.

    Examples: an event file line with no timestamp, a transaction with
    an unparsable timestamp, unsorted input where sorted input was
    promised.
    """


class EmptyDatabaseError(ReproError, ValueError):
    """An operation that needs at least one transaction got none."""


class SearchSpaceError(ReproError, RuntimeError):
    """The requested exhaustive search would be astronomically large.

    Raised by the reference (naive) miner when the item universe exceeds
    its configured limit; the purpose of that miner is ground-truth
    verification on small inputs, not production mining.
    """
