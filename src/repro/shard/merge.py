"""Stitching per-shard pattern state into the global result.

The merge rests on the split/merge reading of the paper's model (the
``concat-disjoint`` metamorphic relation, Definitions 5 and 8): shards
partition the time axis, so a pattern's global point sequence is the
concatenation of its per-shard point sequences, and every *maximal*
periodic run of the global sequence is either (a) a maximal run inside
one shard, or (b) a chain of per-shard fragments whose adjacent
endpoints are within ``per`` of each other across a cut.

Each :class:`ShardResult` therefore carries, per candidate pattern, the
complete run-length encoding of the pattern inside the shard — *all*
maximal runs with their ``(start, end, ps)``, not only the interesting
ones — plus the shard-local support.  :func:`merge_shard_results`
concatenates the run lists in shard order, concatenates runs that span
a cut (gap ``<= per``), sums supports, and only then applies the
``min_ps`` / ``min_rec`` thresholds; recurrence is thereby re-checked
on the *stitched* runs, so a pattern whose interesting intervals exist
only across cuts is recovered exactly, and a fragment that only looked
interesting in isolation is not double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Tuple,
)

from repro.core.model import (
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)

__all__ = [
    "MergeStats",
    "ShardPatternState",
    "ShardResult",
    "merge_shard_results",
]

#: One maximal periodic run: ``(start, end, periodic_support)``.
Run = Tuple[float, float, int]


class ShardPatternState(NamedTuple):
    """A pattern's complete point-sequence summary inside one shard."""

    support: int
    runs: Tuple[Run, ...]


@dataclass(frozen=True)
class ShardResult:
    """Verified per-pattern state of one shard, keyed by itemset."""

    index: int
    states: Mapping[FrozenSet, ShardPatternState]


class MergeStats(NamedTuple):
    """What the merge actually did (telemetry and QA counters)."""

    patterns_considered: int
    stitched_runs: int
    boundary_patterns: int


def merge_shard_results(
    shard_results: Iterable[ShardResult],
    *,
    per: float,
    min_ps: int,
    min_rec: int,
) -> Tuple[RecurringPatternSet, MergeStats]:
    """Stitch shard states into the exact in-memory mining result.

    ``min_ps`` must already be an absolute count resolved against the
    *full* database size (fractional thresholds resolve before
    sharding, or each shard would move the bar).
    """
    ordered = sorted(shard_results, key=lambda shard: shard.index)
    runs_by_pattern: Dict[FrozenSet, List[Run]] = {}
    support: Dict[FrozenSet, int] = {}
    for shard in ordered:
        for items, state in shard.states.items():
            runs_by_pattern.setdefault(items, []).extend(state.runs)
            support[items] = support.get(items, 0) + state.support

    patterns: List[RecurringPattern] = []
    stitched_runs = 0
    boundary_patterns = 0
    for items, runs in runs_by_pattern.items():
        merged: List[Run] = []
        stitched_here = 0
        for run in runs:
            # Within a shard consecutive maximal runs are > per apart,
            # so this gap test only ever fires across a cut — including
            # chains that hop over shards where the pattern is absent.
            if merged and run[0] - merged[-1][1] <= per:
                previous = merged[-1]
                merged[-1] = (previous[0], run[1], previous[2] + run[2])
                stitched_here += 1
            else:
                merged.append(run)
        stitched_runs += stitched_here
        if stitched_here:
            boundary_patterns += 1
        intervals = tuple(
            PeriodicInterval(start, end, ps)
            for start, end, ps in merged
            if ps >= min_ps
        )
        if len(intervals) >= min_rec:
            patterns.append(
                RecurringPattern(
                    items=items,
                    support=support[items],
                    intervals=intervals,
                )
            )
    return (
        RecurringPatternSet(patterns),
        MergeStats(
            patterns_considered=len(runs_by_pattern),
            stitched_runs=stitched_runs,
            boundary_patterns=boundary_patterns,
        ),
    )
