"""Out-of-core, time-sharded mining (plan → mine shards → verify → merge).

The pipeline turns the split/merge theorem into an execution path whose
output is byte-identical to in-memory mining while never holding more
than one shard (plus output-sized candidate state) in memory:

1. **Plan** — :class:`~repro.shard.planner.ShardPlanner` cuts the time
   axis into bounded shards (never splitting a timestamp).
2. **Mine** — every shard mines independently through the existing
   engine / ParallelMiner / resilience stack at the caller's ``per``
   and ``min_ps`` but relaxed ``min_rec = 1``: any pattern with an
   interesting interval wholly inside some shard becomes a candidate.
   Meanwhile a :class:`~repro.shard.candidates.BoundaryWindowCollector`
   retains the transactions within ``per`` of each cut, from which the
   cut-spanning candidates are enumerated — together the two candidate
   sources form a proven superset of the true result (see
   ``docs/performance.md``).
3. **Verify** — a second pass over the shards computes each candidate's
   exact per-shard support and run-length encoding.
4. **Merge** — :func:`~repro.shard.merge.merge_shard_results` stitches
   runs across cuts and applies the real thresholds.

Entry points: :func:`mine_sharded_database` (shard an in-memory
database — the façade's ``shards=`` / ``max_events_in_memory=`` path
and the QA relation's adversarial-cuts path) and
:func:`mine_sharded_file` (true out-of-core: both passes stream the
file through :func:`~repro.timeseries.io.iter_database_chunks`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro._validation import Number, resolve_count_threshold
from repro.core.intervals import _iter_runs
from repro.core.model import MiningParameters, RecurringPatternSet
from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.shard.candidates import (
    BoundaryWindowCollector,
    boundary_candidates,
)
from repro.shard.merge import (
    MergeStats,
    ShardPatternState,
    ShardResult,
    merge_shard_results,
)
from repro.shard.planner import ShardPlan, ShardPlanner, plan_with_cuts
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import (
    PathOrFile,
    iter_database_chunks,
    stream_transaction_rows,
)

__all__ = [
    "DEFAULT_MAX_TRANSACTIONS",
    "ShardRunReport",
    "mine_sharded_database",
    "mine_sharded_file",
    "mine_sharded_file_request",
    "mine_sharded_request",
]

#: Default per-shard transaction bound for the file-based path.
DEFAULT_MAX_TRANSACTIONS = 100_000


@dataclass(frozen=True)
class ShardRunReport:
    """What one sharded run did — attached to telemetry as ``extra``."""

    shard_count: int
    sizes: Tuple[int, ...]
    cuts: Tuple[float, ...]
    local_candidates: int
    boundary_candidates: int
    merge: MergeStats

    def as_dict(self) -> dict:
        """JSON-ready view, published as ``telemetry.extra["shards"]``."""
        return {
            "shard_count": self.shard_count,
            "sizes": list(self.sizes),
            "cuts": list(self.cuts),
            "local_candidates": self.local_candidates,
            "boundary_candidates": self.boundary_candidates,
            "stitched_runs": self.merge.stitched_runs,
            "boundary_patterns": self.merge.boundary_patterns,
            "patterns_considered": self.merge.patterns_considered,
        }


#: The full result bundle: (patterns, merged stats, fault log, report).
ShardedOutcome = Tuple[
    RecurringPatternSet, MiningStats, List, ShardRunReport
]


def mine_sharded_database(
    database: TransactionalDatabase,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    engine: str = "rp-growth",
    *,
    jobs: int = 1,
    resilience=None,
    monitor=None,
    shards: Optional[int] = None,
    max_transactions: Optional[int] = None,
    cuts: Optional[Sequence[float]] = None,
) -> ShardedOutcome:
    """Mine an in-memory database through the sharded pipeline.

    Exactly one of ``shards``, ``max_transactions`` and ``cuts`` picks
    the plan; ``cuts`` places boundaries explicitly (the QA relations
    use it to cut inside recurrence runs).  The result is byte-identical
    to ``mine_recurring_patterns(database, ...)`` for any plan.
    """
    timestamps = [transaction.ts for transaction in database]
    given = [
        value for value in (shards, max_transactions, cuts)
        if value is not None
    ]
    if len(given) != 1:
        raise ParameterError(
            "exactly one of shards, max_transactions and cuts must be set"
        )
    if cuts is not None:
        plan = plan_with_cuts(timestamps, cuts)
    else:
        plan = ShardPlanner(
            shards=shards, max_transactions=max_transactions
        ).plan(timestamps)
    return _mine_sharded(
        lambda: plan.slices(database),
        total=len(database),
        plan=plan,
        per=per,
        min_ps=min_ps,
        min_rec=min_rec,
        engine=engine,
        jobs=jobs,
        resilience=resilience,
        monitor=monitor,
    )


def mine_sharded_request(
    database: TransactionalDatabase,
    request,
    *,
    monitor=None,
    cuts: Optional[Sequence[float]] = None,
) -> ShardedOutcome:
    """Mine an in-memory database as described by a ``MiningRequest``.

    The request-object spelling of :func:`mine_sharded_database`:
    thresholds, engine, jobs, resilience and the shard plan all come
    from one :class:`~repro.core.request.MiningRequest`.  ``cuts``
    overrides the plan with explicit boundaries (the QA relations'
    hook); otherwise exactly one of ``request.shards`` /
    ``request.max_events_in_memory`` must be set.
    """
    return mine_sharded_database(
        database,
        request.per,
        request.min_ps,
        request.min_rec,
        request.engine,
        jobs=request.jobs,
        resilience=request.resilience,
        monitor=monitor,
        shards=None if cuts is not None else request.shards,
        max_transactions=(
            None if cuts is not None else request.max_events_in_memory
        ),
        cuts=cuts,
    )


def mine_sharded_file_request(
    source: PathOrFile,
    request,
    *,
    monitor=None,
    use_mmap: bool = False,
) -> ShardedOutcome:
    """Mine a time-sorted file as described by a ``MiningRequest``.

    The request-object spelling of :func:`mine_sharded_file`; the
    per-shard bound comes from ``request.max_events_in_memory``
    (falling back to :data:`DEFAULT_MAX_TRANSACTIONS`).
    """
    return mine_sharded_file(
        source,
        request.per,
        request.min_ps,
        request.min_rec,
        request.engine,
        jobs=request.jobs,
        resilience=request.resilience,
        monitor=monitor,
        max_transactions=(
            request.max_events_in_memory
            if request.max_events_in_memory is not None
            else DEFAULT_MAX_TRANSACTIONS
        ),
        use_mmap=use_mmap,
    )


def mine_sharded_file(
    source: PathOrFile,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    engine: str = "rp-growth",
    *,
    jobs: int = 1,
    resilience=None,
    monitor=None,
    max_transactions: int = DEFAULT_MAX_TRANSACTIONS,
    use_mmap: bool = False,
) -> ShardedOutcome:
    """Mine a time-sorted transaction file without ever loading it.

    Three sequential passes stream the file through the chunked reader
    (:func:`~repro.timeseries.io.iter_database_chunks`): a counting
    pass (fractional ``min_ps`` resolves against the full transaction
    count, exactly as in-memory mining resolves it), the mining pass
    and the verification pass.  Peak memory is bounded by
    ``max_transactions`` plus output-sized candidate state, independent
    of the input length.  ``source`` must be a path when the passes
    need to reopen it (an open handle only supports a single pass) or
    when ``use_mmap`` is set.
    """
    if hasattr(source, "read"):
        raise ParameterError(
            "mine_sharded_file needs a re-readable path, not an open "
            "handle — the pipeline streams the input more than once"
        )
    total = 0
    previous_ts = None
    for ts, _ in stream_transaction_rows(source, use_mmap=use_mmap):
        if ts != previous_ts:
            total += 1
            previous_ts = ts
    shard_count = -(-total // max_transactions) if total else 0
    return _mine_sharded(
        lambda: iter_database_chunks(
            source, max_transactions, use_mmap=use_mmap
        ),
        total=total,
        plan=None,
        per=per,
        min_ps=min_ps,
        min_rec=min_rec,
        engine=engine,
        jobs=jobs,
        resilience=resilience,
        monitor=monitor,
        shard_count_hint=shard_count,
    )


# ----------------------------------------------------------------------
# The pipeline core
# ----------------------------------------------------------------------
def _mine_sharded(
    provider: Callable[[], Iterator[TransactionalDatabase]],
    *,
    total: int,
    plan: Optional[ShardPlan],
    per: Number,
    min_ps: Union[int, float],
    min_rec: int,
    engine: str,
    jobs: int,
    resilience,
    monitor,
    shard_count_hint: Optional[int] = None,
) -> ShardedOutcome:
    from repro.core.miner import _run_engine
    from repro.core.request import resolve_jobs

    MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
    jobs = resolve_jobs(jobs, engine)
    if total == 0:
        empty = ShardRunReport(0, (), (), 0, 0, MergeStats(0, 0, 0))
        return RecurringPatternSet(), MiningStats(), [], empty
    min_ps_abs = resolve_count_threshold(min_ps, "min_ps", total)
    expected_shards = (
        plan.shard_count if plan is not None else shard_count_hint
    )
    registry = monitor.registry if monitor is not None else None

    stats = MiningStats()
    faults: List = []
    candidates: Set[FrozenSet] = set()
    collector = BoundaryWindowCollector(per)
    sizes: List[int] = []
    cut_timestamps: List[float] = []

    if monitor is not None:
        monitor.phase_started("shard-mine", units=expected_shards)
    try:
        with span("shard-mine"):
            previous_end: Optional[float] = None
            for index, shard_db in enumerate(provider()):
                if previous_end is not None:
                    collector.cut(previous_end)
                    cut_timestamps.append(previous_end)
                with span(f"shard[{index}]"):
                    found, shard_stats, shard_faults = _run_engine(
                        shard_db, per, min_ps_abs, 1, engine, jobs,
                        resilience, monitor=monitor,
                    )
                stats.merge(shard_stats)
                faults.extend(shard_faults)
                for pattern in found:
                    candidates.add(pattern.items)
                for ts, itemset in shard_db:
                    collector.observe(ts, itemset)
                sizes.append(len(shard_db))
                previous_end = shard_db.end
                if monitor is not None:
                    monitor.unit_done(index)
    finally:
        if monitor is not None:
            monitor.phase_finished()

    local_count = len(candidates)
    with span("shard-candidates"):
        spanning = boundary_candidates(collector.finish())
    candidates |= spanning

    shard_results: List[ShardResult] = []
    if monitor is not None:
        monitor.phase_started("shard-verify", units=len(sizes))
    try:
        with span("shard-verify"):
            for index, shard_db in enumerate(provider()):
                states: Dict[FrozenSet, ShardPatternState] = {}
                for items in candidates:
                    timestamps = shard_db.timestamps_of(items)
                    if timestamps:
                        states[items] = ShardPatternState(
                            support=len(timestamps),
                            runs=tuple(_iter_runs(timestamps, per)),
                        )
                shard_results.append(ShardResult(index, states))
                if monitor is not None:
                    monitor.unit_done(index)
    finally:
        if monitor is not None:
            monitor.phase_finished()

    with span("shard-merge"):
        result, merge_stats = merge_shard_results(
            shard_results, per=per, min_ps=min_ps_abs, min_rec=min_rec
        )

    # The per-shard engine counters summed above describe the relaxed
    # candidate mines; re-point the headline fields at the merged run.
    stats.patterns_found = len(result)
    stats.candidate_patterns += len(candidates)
    stats.recurrence_evaluations += merge_stats.patterns_considered

    report = ShardRunReport(
        shard_count=len(sizes),
        sizes=tuple(sizes),
        cuts=tuple(cut_timestamps),
        local_candidates=local_count,
        boundary_candidates=len(spanning),
        merge=merge_stats,
    )
    if registry is not None:
        registry.counter("repro_shard_runs_total").inc()
        registry.counter("repro_shard_mined_total").inc(len(sizes))
        registry.counter("repro_shard_transactions_total").inc(total)
        registry.counter("repro_shard_candidates_total").inc(
            len(candidates)
        )
        registry.counter("repro_shard_boundary_candidates_total").inc(
            len(spanning)
        )
        registry.counter("repro_shard_stitched_runs_total").inc(
            merge_stats.stitched_runs
        )
    return result, stats, faults, report
