"""Boundary-window candidate enumeration for the shard merge.

Per-shard mining (even at the relaxed ``min_rec = 1`` the pipeline
uses) can only surface patterns with at least one interesting interval
*inside* some shard.  A pattern whose every interesting interval spans
a cut — each fragment individually below ``min_ps`` — is invisible to
every shard and must be recovered from the cut neighbourhoods.

The key localization fact: if a periodic run of pattern ``X`` spans the
cut ``c``, its two occurrences adjacent to the cut satisfy
``t_left <= c < t_right`` and ``t_right - t_left <= per`` (Definition 4),
so **both lie within ``per`` of the cut**: ``t_left in (c - per, c]``
and ``t_right in (c, c + per]``.  The run itself may extend arbitrarily
far into either side, but the *patterns able to span the cut* are fully
determined by the transactions inside this ``2·per`` window: ``X`` must
be a subset of one transaction on each side, i.e. a subset of some
pairwise itemset intersection across the cut.

:class:`BoundaryWindowCollector` retains exactly those window
transactions while the shards stream past (bounded by the data density
within ``per`` of each cut, independent of total input size), and
:func:`boundary_candidates` expands the pairwise intersections into the
candidate itemsets the verification pass must re-check globally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, Iterable, List, NamedTuple, Set, Tuple

__all__ = ["BoundaryWindowCollector", "CutWindows", "boundary_candidates"]

#: One transaction kept in a window: ``(ts, itemset)``.
WindowRow = Tuple[float, FrozenSet]


class CutWindows(NamedTuple):
    """The transactions within ``per`` of one cut, split by side."""

    cut: float
    left: Tuple[WindowRow, ...]   # ts in (cut - per, cut]
    right: Tuple[WindowRow, ...]  # ts in (cut, cut + per]


class _OpenWindow:
    __slots__ = ("cut", "left", "right")

    def __init__(self, cut: float, left: List[WindowRow]):
        self.cut = cut
        self.left = left
        self.right: List[WindowRow] = []


class BoundaryWindowCollector:
    """Streams transactions once, retaining only the cut neighbourhoods.

    Call :meth:`observe` for every transaction in time order and
    :meth:`cut` at each shard boundary (after the boundary shard's last
    transaction, before the next shard's first).  Memory is bounded by
    the number of transactions within ``per`` of the most recent
    timestamp plus any still-open right windows — never by the input
    size.
    """

    def __init__(self, per: float):
        self.per = per
        self._recent: Deque[WindowRow] = deque()
        self._open: List[_OpenWindow] = []
        self._closed: List[CutWindows] = []

    def observe(self, ts: float, items: FrozenSet) -> None:
        """Feed one transaction, in timestamp order.

        The itemset lands in the trailing ``(ts - per, ts]`` buffer
        (the *left* window of a future cut) and in the right window of
        every still-open cut within ``per`` behind it.
        """
        still_open = []
        for window in self._open:
            if ts <= window.cut + self.per:
                window.right.append((ts, items))
                still_open.append(window)
            else:
                self._close(window)
        self._open = still_open
        self._recent.append((ts, items))
        while self._recent and self._recent[0][0] <= ts - self.per:
            self._recent.popleft()

    def cut(self, cut: float) -> None:
        """Declare a shard boundary at ``cut`` (the last ts of a shard).

        Freezes the current trailing buffer as the cut's left window
        ``(cut - per, cut]`` and opens its right window ``(cut, cut + per]``
        for the transactions that follow.
        """
        left = [row for row in self._recent if cut - self.per < row[0] <= cut]
        self._open.append(_OpenWindow(cut, left))

    def _close(self, window: _OpenWindow) -> None:
        self._closed.append(
            CutWindows(window.cut, tuple(window.left), tuple(window.right))
        )

    def finish(self) -> List[CutWindows]:
        """Close any still-open windows and return all cut windows."""
        for window in self._open:
            self._close(window)
        self._open = []
        return list(self._closed)


def boundary_candidates(
    windows: Iterable[CutWindows],
) -> Set[FrozenSet]:
    """Every itemset that could have a periodic run spanning some cut.

    For each cut, the candidates are the non-empty subsets of the
    pairwise intersections ``items(t_left) & items(t_right)`` across
    the cut — a pattern occurring on both sides within ``per`` is a
    subset of at least one such intersection.  Subset expansion is
    exponential in the *intersection* size, which is small in practice
    (and bounded by the narrowest transaction of the pair), the same
    enumeration scale the QA streaming relations already rely on.
    """
    candidates: Set[FrozenSet] = set()
    for window in windows:
        intersections: Set[FrozenSet] = set()
        for _, left_items in window.left:
            for _, right_items in window.right:
                common = left_items & right_items
                if common:
                    intersections.add(frozenset(common))
        for common in intersections:
            members = sorted(common, key=repr)
            for mask in range(1, 1 << len(members)):
                candidates.add(
                    frozenset(
                        members[index]
                        for index in range(len(members))
                        if mask >> index & 1
                    )
                )
    return candidates
