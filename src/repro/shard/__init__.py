"""Out-of-core, time-sharded mining.

The shard pipeline cuts the time axis into bounded-memory shards
(:mod:`~repro.shard.planner`), mines each shard independently through
the existing engine stack while collecting cut-neighbourhood candidates
(:mod:`~repro.shard.candidates`), verifies every candidate per shard
and stitches the per-shard run encodings into the exact in-memory
result (:mod:`~repro.shard.merge`).  :mod:`~repro.shard.miner` is the
orchestrator; the façade exposes it as
``mine_recurring_patterns(..., shards=...)`` /
``max_events_in_memory=...`` and the CLI as ``repro-mine shard``.
"""

from repro.shard.candidates import (
    BoundaryWindowCollector,
    CutWindows,
    boundary_candidates,
)
from repro.shard.merge import (
    MergeStats,
    ShardPatternState,
    ShardResult,
    merge_shard_results,
)
from repro.shard.miner import (
    DEFAULT_MAX_TRANSACTIONS,
    ShardRunReport,
    mine_sharded_database,
    mine_sharded_file,
    mine_sharded_file_request,
    mine_sharded_request,
)
from repro.shard.planner import ShardPlan, ShardPlanner, plan_with_cuts

__all__ = [
    "BoundaryWindowCollector",
    "CutWindows",
    "boundary_candidates",
    "MergeStats",
    "ShardPatternState",
    "ShardResult",
    "merge_shard_results",
    "DEFAULT_MAX_TRANSACTIONS",
    "ShardRunReport",
    "mine_sharded_database",
    "mine_sharded_file",
    "mine_sharded_file_request",
    "mine_sharded_request",
    "ShardPlan",
    "ShardPlanner",
    "plan_with_cuts",
]
