"""Time-axis shard planning for out-of-core mining.

A *shard plan* cuts the time axis of a transactional database into
contiguous segments.  Cuts are expressed as timestamps — shard ``k``
holds exactly the transactions with ``cuts[k-1] < ts <= cuts[k]`` — and
every cut is itself the timestamp of the last transaction of its shard,
so a plan can never split transactions that share a timestamp (the
grouping invariant of the series-to-TDB transformation survives
sharding).

Two planning modes cover the two callers:

* :class:`ShardPlanner` balances transaction counts — either a target
  shard count (``shards=N``) or a memory bound
  (``max_transactions=M``, the out-of-core mode);
* :func:`plan_with_cuts` accepts explicit cut timestamps, which the QA
  suites use to place cuts *adversarially inside* recurrence runs.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["ShardPlan", "ShardPlanner", "plan_with_cuts"]


@dataclass(frozen=True)
class ShardPlan:
    """Where the time axis is cut, and how big each shard is.

    Attributes
    ----------
    cuts:
        One timestamp per internal boundary (``shard_count - 1`` of
        them): the last transaction timestamp of each non-final shard.
    sizes:
        Transactions per shard, in time order.
    """

    cuts: Tuple[float, ...]
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.sizes and len(self.cuts) != len(self.sizes) - 1:
            raise ParameterError(
                f"a plan with {len(self.sizes)} shards needs "
                f"{len(self.sizes) - 1} cuts, got {len(self.cuts)}"
            )

    @property
    def shard_count(self) -> int:
        return len(self.sizes)

    @property
    def total(self) -> int:
        return sum(self.sizes)

    def slices(
        self, database: TransactionalDatabase
    ) -> Iterator[TransactionalDatabase]:
        """Yield the plan's shards as databases sliced from ``database``."""
        offset = 0
        for size in self.sizes:
            yield TransactionalDatabase(
                database.transactions[offset:offset + size]
            )
            offset += size


class ShardPlanner:
    """Balanced planning by shard count or by per-shard memory bound.

    Exactly one of ``shards`` (target shard count) and
    ``max_transactions`` (upper bound on any shard's transaction count)
    must be given.  Both are clamped so no shard is ever empty.
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        max_transactions: Optional[int] = None,
    ) -> None:
        if (shards is None) == (max_transactions is None):
            raise ParameterError(
                "exactly one of shards and max_transactions must be set"
            )
        for name, value in (
            ("shards", shards), ("max_transactions", max_transactions)
        ):
            if value is not None and (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 1
            ):
                raise ParameterError(
                    f"{name} must be a positive int, got {value!r}"
                )
        self.shards = shards
        self.max_transactions = max_transactions

    def plan(self, timestamps: Sequence[float]) -> ShardPlan:
        """A balanced plan over strictly increasing ``timestamps``."""
        n = len(timestamps)
        if n == 0:
            return ShardPlan((), ())
        if self.shards is not None:
            count = min(self.shards, n)
        else:
            count = math.ceil(n / self.max_transactions)
        base, extra = divmod(n, count)
        sizes = tuple(
            base + (1 if index < extra else 0) for index in range(count)
        )
        cuts = []
        offset = 0
        for size in sizes[:-1]:
            offset += size
            cuts.append(timestamps[offset - 1])
        return ShardPlan(tuple(cuts), sizes)

    def plan_database(self, database: TransactionalDatabase) -> ShardPlan:
        """Plan over a database's transaction timestamps."""
        return self.plan([transaction.ts for transaction in database])


def plan_with_cuts(
    timestamps: Sequence[float], cuts: Sequence[float]
) -> ShardPlan:
    """A plan with explicit cut positions (canonicalized, deduplicated).

    Each requested cut is snapped down to the greatest transaction
    timestamp ``<= cut`` (a cut between two transactions separates
    them; a cut *at* a transaction keeps it on the left).  Cuts before
    the first or at/after the last timestamp would create empty shards
    and are dropped.
    """
    n = len(timestamps)
    if n == 0:
        return ShardPlan((), ())
    boundaries = set()
    for cut in cuts:
        index = bisect.bisect_right(timestamps, cut) - 1
        if 0 <= index < n - 1:
            boundaries.add(index)
    ordered = sorted(boundaries)
    sizes = []
    previous = -1
    for index in ordered:
        sizes.append(index - previous)
        previous = index
    sizes.append(n - 1 - previous)
    return ShardPlan(
        tuple(timestamps[index] for index in ordered), tuple(sizes)
    )
