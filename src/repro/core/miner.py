"""Public mining façade.

:func:`mine_recurring_patterns` is the one-call entry point most users
need: it accepts either a :class:`~repro.timeseries.events.EventSequence`
(a raw time series, converted losslessly to a transactional database
first) or a :class:`~repro.timeseries.database.TransactionalDatabase`,
picks an engine and returns a
:class:`~repro.core.model.RecurringPatternSet`.
"""

from __future__ import annotations

from typing import Union

from repro._validation import Number
from repro.core.model import RecurringPatternSet
from repro.core.naive import mine_recurring_patterns_naive
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

__all__ = ["mine_recurring_patterns", "ENGINES"]

ENGINES = ("rp-growth", "rp-eclat", "rp-eclat-np", "naive")

Source = Union[EventSequence, TransactionalDatabase]


def mine_recurring_patterns(
    data: Source,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    engine: str = "rp-growth",
) -> RecurringPatternSet:
    """Discover all recurring patterns in a time series or database.

    Parameters
    ----------
    data:
        An :class:`EventSequence` (grouped into a transactional database
        first, as in Section 3 of the paper) or a ready
        :class:`TransactionalDatabase`.
    per:
        Period threshold: an inter-arrival time is a periodic
        (interesting) occurrence when it is ≤ ``per``.
    min_ps:
        Minimum periodic-support — the minimum number of consecutive
        cyclic repetitions a periodic-interval must contain to be
        interesting.  ``int`` = absolute count; ``float`` in (0, 1] =
        fraction of the database size.
    min_rec:
        Minimum recurrence — the minimum number of interesting
        periodic-intervals a pattern must have (default 1).
    engine:
        ``"rp-growth"`` (the paper's algorithm, default), ``"rp-eclat"``
        (vertical cross-check engine), ``"rp-eclat-np"`` (vectorised
        vertical engine) or ``"naive"`` (exhaustive; small inputs
        only).

    Returns
    -------
    RecurringPatternSet
        Every pattern satisfying Definition 9, each carrying its
        support, recurrence and interesting periodic-intervals.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> print(found.pattern("ab"))
    ab [support=7, recurrence=2, {[1, 4]:3, [11, 14]:3}]
    """
    database = _as_database(data)
    if engine == "rp-growth":
        return RPGrowth(per, min_ps, min_rec).mine(database)
    if engine == "rp-eclat":
        return RPEclat(per, min_ps, min_rec).mine(database)
    if engine == "rp-eclat-np":
        from repro.core.accel import FastRPEclat

        return FastRPEclat(per, min_ps, min_rec).mine(database)
    if engine == "naive":
        return mine_recurring_patterns_naive(database, per, min_ps, min_rec)
    raise ParameterError(
        f"unknown engine {engine!r}; expected one of {ENGINES}"
    )


def _as_database(data: Source) -> TransactionalDatabase:
    if isinstance(data, TransactionalDatabase):
        return data
    if isinstance(data, EventSequence):
        return TransactionalDatabase.from_events(data)
    raise TypeError(
        "data must be an EventSequence or TransactionalDatabase, "
        f"got {type(data).__name__}"
    )
