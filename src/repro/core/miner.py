"""Public mining façade.

:func:`mine_recurring_patterns` is the one-call entry point most users
need: it accepts either a :class:`~repro.timeseries.events.EventSequence`
(a raw time series, converted losslessly to a transactional database
first) or a :class:`~repro.timeseries.database.TransactionalDatabase`,
picks an engine from the registry (:mod:`repro.core.engines`) and
returns a :class:`~repro.core.model.RecurringPatternSet`.

Cross-cutting behaviour is configured through two options objects
(:mod:`repro.core.options`): ``resilience=ResilienceOptions(...)`` for
the parallel failure handling and
``observability=ObservabilityOptions(...)`` for telemetry.  The
pre-PR-5 flat keywords (``timeout=``, ``collect_stats=``, …) completed
their deprecation cycle and now raise
:class:`~repro.exceptions.ParameterError` naming the replacement.

Internally the façade is a thin constructor over the unified request
object: it builds a validated
:class:`~repro.core.request.MiningRequest` and hands it to
:func:`execute_request`, the single executor the CLI, the sweep
engine's cell scheduler, the shard pipeline and the service daemon all
share.
"""

from __future__ import annotations

import time
import warnings
from typing import List, Optional, Tuple, Union

from repro._validation import Number
from repro.core.engines import ENGINES, get_engine
from repro.core.options import (
    UNSET,
    ObservabilityOptions,
    ResilienceOptions,
    resolve_observability,
    resolve_resilience,
)
from repro.core.model import RecurringPatternSet
from repro.core.request import MiningRequest
from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats
from repro.obs.progress import monitor_from_options
from repro.obs.report import MiningTelemetry, TraceWriter
from repro.obs.spans import SpanCollector, span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

__all__ = [
    "ENGINES",
    "execute_request",
    "mine_recurring_patterns",
    "run_request",
]

Source = Union[EventSequence, TransactionalDatabase]


def mine_recurring_patterns(
    data: Source,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    engine: str = "rp-growth",
    *,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
    max_events_in_memory: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
    observability: Optional[ObservabilityOptions] = None,
    timeout=UNSET,
    max_retries=UNSET,
    fallback=UNSET,
    fault_plan=UNSET,
    collect_stats=UNSET,
    trace=UNSET,
    track_memory=UNSET,
    dataset=UNSET,
) -> Union[
    RecurringPatternSet, Tuple[RecurringPatternSet, MiningTelemetry]
]:
    """Discover all recurring patterns in a time series or database.

    Parameters
    ----------
    data:
        An :class:`EventSequence` (grouped into a transactional database
        first, as in Section 3 of the paper) or a ready
        :class:`TransactionalDatabase`.
    per:
        Period threshold: an inter-arrival time is a periodic
        (interesting) occurrence when it is ≤ ``per``.
    min_ps:
        Minimum periodic-support — the minimum number of consecutive
        cyclic repetitions a periodic-interval must contain to be
        interesting.  ``int`` = absolute count; ``float`` in (0, 1] =
        fraction of the database size.
    min_rec:
        Minimum recurrence — the minimum number of interesting
        periodic-intervals a pattern must have (default 1).
    engine:
        A name from the engine registry (:data:`repro.core.engines.ENGINES`):
        ``"rp-growth"`` (the paper's algorithm, default), ``"rp-eclat"``
        (vertical cross-check engine), ``"rp-eclat-np"`` (vectorised
        vertical engine), ``"rp-eclat-vec"`` (batched columnar NumPy
        kernel) or ``"naive"`` (exhaustive; small inputs only).  Engines added via
        :func:`repro.core.engines.register_engine` work here too.
    jobs:
        Worker-process count.  ``None`` or ``1`` mines serially
        (byte-identical to earlier releases); ``jobs > 1`` partitions
        the search space by prefix and mines it in a process pool
        (:mod:`repro.parallel`) — the returned pattern set and the
        merged counters are identical to the serial run's.  Only
        engines whose registry entry has ``supports_jobs`` accept
        ``jobs > 1`` (the ``naive`` reference does not).  See
        ``docs/performance.md`` for when parallelism actually pays.
    shards:
        Route the mine through the time-sharded pipeline
        (:mod:`repro.shard`) with this many balanced shards.  The
        result is byte-identical to the direct mine for any shard
        count; each shard still mines through ``engine`` / ``jobs`` /
        ``resilience``.  Mutually exclusive with
        ``max_events_in_memory``.
    max_events_in_memory:
        Like ``shards``, but bounded by memory instead of count: no
        shard holds more than this many transactions.  This is the
        out-of-core knob — see ``repro-mine shard`` for the variant
        that streams straight from a file without ever loading it.
    resilience:
        A :class:`~repro.core.options.ResilienceOptions` bundling the
        parallel failure-handling knobs (per-chunk ``timeout``,
        ``max_retries``, ``fallback``, ``fault_plan``).  Ignored when
        mining serially.
    observability:
        An :class:`~repro.core.options.ObservabilityOptions` bundling
        the telemetry knobs (``collect_stats``, ``trace``,
        ``track_memory``, ``dataset``).
    timeout, max_retries, fallback, fault_plan:
        **Removed** flat spellings of the ``resilience`` fields.  They
        shipped one release of :class:`DeprecationWarning` (PR 5) and
        now raise :class:`~repro.exceptions.ParameterError` naming the
        options-object (or :class:`~repro.core.request.MiningRequest`)
        replacement.
    collect_stats, trace, track_memory, dataset:
        **Removed** flat spellings of the ``observability`` fields,
        handled the same way.

    Returns
    -------
    RecurringPatternSet or (RecurringPatternSet, MiningTelemetry)
        Every pattern satisfying Definition 9, each carrying its
        support, recurrence and interesting periodic-intervals.  The
        return value is a ``(patterns, telemetry)`` tuple **iff**
        ``collect_stats`` is true; with ``trace`` alone the full
        telemetry is still built and written to the trace file, but
        only the pattern set is returned.  ``track_memory`` without
        ``collect_stats`` or ``trace`` has nothing to attach its
        samples to — the call warns (``RuntimeWarning``) and mines
        without memory tracking instead of silently ignoring it.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> print(found.pattern("ab"))
    ab [support=7, recurrence=2, {[1, 4]:3, [11, 14]:3}]
    >>> from repro import ObservabilityOptions
    >>> found, telemetry = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2,
    ...     observability=ObservabilityOptions(collect_stats=True))
    >>> telemetry.stats.patterns_found
    8
    """
    # Engine first (its message names the registry), then the threshold
    # triple — the engines would reject the same values, but only after
    # the transform span has run (and, for parallel runs, potentially
    # inside a worker).  MiningRequest construction validates everything
    # eagerly with the shared _validation.py messages.
    get_engine(engine)
    resilience = resolve_resilience(
        resilience,
        timeout=timeout,
        max_retries=max_retries,
        fallback=fallback,
        fault_plan=fault_plan,
    )
    obs = resolve_observability(
        observability,
        collect_stats=collect_stats,
        trace=trace,
        track_memory=track_memory,
        dataset=dataset,
    )
    request = MiningRequest(
        per=per,
        min_ps=min_ps,
        min_rec=min_rec,
        engine=engine,
        jobs=jobs,
        shards=shards,
        max_events_in_memory=max_events_in_memory,
        resilience=resilience,
        observability=obs,
    )
    return execute_request(request, data)


def execute_request(
    request: MiningRequest,
    data: Optional[Source] = None,
) -> Union[
    RecurringPatternSet, Tuple[RecurringPatternSet, MiningTelemetry]
]:
    """Execute one validated :class:`~repro.core.request.MiningRequest`.

    This is the single dispatch every mining surface shares: the façade
    builds a request from its keywords, the CLI builds one from its
    flags, the sweep engine builds one per mined cell, and the service
    daemon receives one over HTTP.  ``data`` supplies the database (or
    event sequence) directly; when omitted, ``request.source`` is
    loaded — a request with neither is unexecutable and raises
    :class:`~repro.exceptions.ParameterError`.

    The return contract is the façade's: the pattern set, or
    ``(patterns, telemetry)`` when ``observability.collect_stats`` is
    true.  When telemetry is collected, the ``repro-run/v1`` record
    additionally carries the database's content ``dataset_digest`` —
    the same digest the service result cache keys on.
    """
    if data is None:
        if request.source is None:
            raise ParameterError(
                "request has no dataset: pass data to execute_request "
                "or build the MiningRequest with source=DatasetRef(...)"
            )
        data = request.source.load()
    per, min_ps, min_rec = request.per, request.min_ps, request.min_rec
    engine, jobs = request.engine, request.jobs
    resilience = request.resilience
    obs = request.observability
    track = obs.track_memory
    if track and not obs.enabled:
        warnings.warn(
            "track_memory=True has no effect without collect_stats or "
            "trace — no telemetry is collected, so there is nothing to "
            "attach memory samples to",
            RuntimeWarning,
            stacklevel=2,
        )
        track = False
    # Live observability (progress lines, metrics snapshots, worker
    # heartbeats) is orthogonal to post-hoc telemetry: it exists on
    # both branches below, including the jobs=1 serial path.
    monitor = monitor_from_options(obs)
    owns_monitor = monitor is not None and obs.monitor is None

    def _dispatch(database):
        """Direct or sharded mine: (result, stats, faults, report?)."""
        if not request.sharded:
            found, run_stats, fault_list = run_request(
                database, request, monitor=monitor
            )
            return found, run_stats, fault_list, None
        from repro.shard.miner import mine_sharded_request

        return mine_sharded_request(database, request, monitor=monitor)

    try:
        if not obs.enabled:
            started = time.perf_counter()
            with span("transform"):
                database = _as_database(data)
            result, run_stats, _, _ = _dispatch(database)
            if monitor is not None:
                monitor.run_finished(
                    engine=engine,
                    stats=run_stats,
                    seconds=time.perf_counter() - started,
                    patterns_found=len(result),
                )
            return result

        collector = SpanCollector(track_memory=track)
        started = time.perf_counter()
        with collector:
            with span("transform"):
                database = _as_database(data)
            result, stats, fault_events, shard_report = _dispatch(database)
        seconds = time.perf_counter() - started
        if monitor is not None:
            monitor.run_finished(
                engine=engine,
                stats=stats,
                seconds=seconds,
                patterns_found=len(result),
            )
    finally:
        if owns_monitor:
            monitor.close()
    params: dict = request.thresholds()
    if jobs > 1:
        params["jobs"] = jobs
    extra: dict = {"dataset_digest": database.digest()}
    if shard_report is not None:
        extra["shards"] = shard_report.as_dict()
    if fault_events:
        extra["faults"] = {
            "chunks_retried": stats.chunks_retried,
            "chunks_fallback": stats.chunks_fallback,
            "events": [event.as_dict() for event in fault_events],
        }
    dataset_label = obs.dataset
    if dataset_label is None and request.source is not None:
        dataset_label = request.source.label
    telemetry = MiningTelemetry(
        engine=engine,
        params=params,
        stats=stats,
        spans=collector.spans,
        patterns_found=len(result),
        seconds=seconds,
        memory_peak_bytes=collector.memory_peak_bytes,
        dataset=dataset_label,
        extra=extra,
    )
    if obs.trace is not None:
        with TraceWriter(obs.trace) as writer:
            writer.write_run(telemetry)
    if obs.collect_stats:
        return result, telemetry
    return result


def run_request(
    database: TransactionalDatabase,
    request: MiningRequest,
    *,
    monitor=None,
) -> Tuple[RecurringPatternSet, MiningStats, List]:
    """One direct (non-sharded) engine run of a request.

    The low-level sibling of :func:`execute_request`: no telemetry
    packaging, no transform — the caller owns the database and the span
    collector.  The sweep engine mines every grid cell through this,
    so one :class:`~repro.core.request.MiningRequest` vocabulary covers
    scheduled cells exactly like one-shot mines.  Returns ``(patterns,
    stats, fault_events)``.
    """
    return _run_engine(
        database,
        request.per,
        request.min_ps,
        request.min_rec,
        request.engine,
        request.jobs,
        request.resilience,
        monitor=monitor,
    )


def _run_engine(
    database: TransactionalDatabase,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int,
    engine: str,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
    monitor=None,
) -> Tuple[RecurringPatternSet, MiningStats, List]:
    """Dispatch through the registry: result, counters, fault log.

    The fault log (third element) is always empty for serial runs and
    for fault-free parallel runs; ``resilience`` only applies when
    ``jobs > 1``.  ``monitor`` (a
    :class:`~repro.obs.progress.MiningMonitor`) receives live progress
    on *both* paths — a serial mine reports a single-unit phase plus
    the in-process heartbeat, so progress/metrics never silently drop
    at ``jobs=1``.
    """
    if jobs > 1:
        from repro.parallel import ParallelMiner

        miner = ParallelMiner(
            per, min_ps, min_rec, engine=engine, jobs=jobs,
            resilience=resilience, monitor=monitor,
        )
        result = miner.mine(database)
        return result, miner.last_stats or MiningStats(), miner.last_faults
    if monitor is not None:
        monitor.phase_started(f"mine[{engine}]", units=1)
    try:
        serial = get_engine(engine).factory(per, min_ps, min_rec)
        result = serial.mine(database)
        if monitor is not None:
            monitor.unit_done(0)
            monitor.serial_beat()
    finally:
        if monitor is not None:
            monitor.phase_finished()
    return result, serial.last_stats or MiningStats(), []


def _as_database(data: Source) -> TransactionalDatabase:
    if isinstance(data, TransactionalDatabase):
        return data
    if isinstance(data, EventSequence):
        return TransactionalDatabase.from_events(data)
    raise TypeError(
        "data must be an EventSequence or TransactionalDatabase, "
        f"got {type(data).__name__}"
    )
