"""Public mining façade.

:func:`mine_recurring_patterns` is the one-call entry point most users
need: it accepts either a :class:`~repro.timeseries.events.EventSequence`
(a raw time series, converted losslessly to a transactional database
first) or a :class:`~repro.timeseries.database.TransactionalDatabase`,
picks an engine and returns a
:class:`~repro.core.model.RecurringPatternSet`.

With ``collect_stats=True`` (and friends) the call is additionally
observed through :mod:`repro.obs`: phase spans (transform, first scan,
tree build, mining), the engine's shared counters, optional
``tracemalloc`` peak memory and an optional JSON-lines trace file —
without changing the mined result in any way.
"""

from __future__ import annotations

import time
from typing import IO, Optional, Tuple, Union

from repro._validation import Number
from repro.core.model import MiningParameters, RecurringPatternSet
from repro.core.naive import mine_recurring_patterns_naive
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import RPGrowth
from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats
from repro.obs.report import MiningTelemetry, TraceWriter
from repro.obs.spans import SpanCollector, span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import EventSequence

__all__ = ["mine_recurring_patterns", "ENGINES"]

ENGINES = ("rp-growth", "rp-eclat", "rp-eclat-np", "naive")

Source = Union[EventSequence, TransactionalDatabase]


def mine_recurring_patterns(
    data: Source,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    engine: str = "rp-growth",
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    fallback: str = "serial",
    fault_plan=None,
    collect_stats: bool = False,
    trace: Union[str, IO[str], None] = None,
    track_memory: bool = False,
    dataset: Optional[str] = None,
) -> Union[
    RecurringPatternSet, Tuple[RecurringPatternSet, MiningTelemetry]
]:
    """Discover all recurring patterns in a time series or database.

    Parameters
    ----------
    data:
        An :class:`EventSequence` (grouped into a transactional database
        first, as in Section 3 of the paper) or a ready
        :class:`TransactionalDatabase`.
    per:
        Period threshold: an inter-arrival time is a periodic
        (interesting) occurrence when it is ≤ ``per``.
    min_ps:
        Minimum periodic-support — the minimum number of consecutive
        cyclic repetitions a periodic-interval must contain to be
        interesting.  ``int`` = absolute count; ``float`` in (0, 1] =
        fraction of the database size.
    min_rec:
        Minimum recurrence — the minimum number of interesting
        periodic-intervals a pattern must have (default 1).
    engine:
        ``"rp-growth"`` (the paper's algorithm, default), ``"rp-eclat"``
        (vertical cross-check engine), ``"rp-eclat-np"`` (vectorised
        vertical engine) or ``"naive"`` (exhaustive; small inputs
        only).
    jobs:
        Worker-process count for the pruning engines.  ``None`` or
        ``1`` mines serially (byte-identical to earlier releases);
        ``jobs > 1`` partitions the search space by prefix and mines
        it in a process pool (:mod:`repro.parallel`) — the returned
        pattern set and the merged counters are identical to the
        serial run's.  The ``naive`` engine does not support
        ``jobs > 1``.  See ``docs/performance.md`` for when
        parallelism actually pays.
    timeout:
        Per-chunk deadline in seconds for parallel runs (``None``
        disables deadlines).  Ignored when mining serially.
    max_retries:
        How many times a failed parallel chunk is retried before the
        fallback applies (default 2).  Ignored when mining serially.
    fallback:
        ``"serial"`` (default) re-mines terminally failed chunks
        in-process so the call always returns a complete result;
        ``"raise"`` raises :class:`~repro.exceptions.ChunkFailedError`
        naming the missing prefixes and carrying the partial pattern
        set.  See the "Failure handling" section of
        ``docs/performance.md``.
    fault_plan:
        A :class:`~repro.parallel.faults.FaultPlan` injecting
        deterministic worker failures — testing hook, leave ``None``
        in production.
    collect_stats:
        Also return a :class:`~repro.obs.report.MiningTelemetry` —
        phase spans, the engine's counters, total wall-clock — as the
        second element of a tuple.  The pattern set is identical to an
        unobserved run.
    trace:
        Path (or open text handle) to write a JSON-lines trace to:
        one record per span plus a final ``repro-run/v1`` run record.
        Implies telemetry collection; the return value is only a tuple
        when ``collect_stats`` is also true.
    track_memory:
        Sample per-span peak memory via ``tracemalloc`` (slower; only
        meaningful together with ``collect_stats`` or ``trace``).
    dataset:
        Optional dataset label carried into the telemetry/trace.

    Returns
    -------
    RecurringPatternSet or (RecurringPatternSet, MiningTelemetry)
        Every pattern satisfying Definition 9, each carrying its
        support, recurrence and interesting periodic-intervals; plus
        the run telemetry when ``collect_stats`` is true.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> print(found.pattern("ab"))
    ab [support=7, recurrence=2, {[1, 4]:3, [11, 14]:3}]
    >>> found, telemetry = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2,
    ...     collect_stats=True)
    >>> telemetry.stats.patterns_found
    8
    """
    if engine not in ENGINES:
        raise ParameterError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    # Validate the threshold triple eagerly — the engines would reject
    # the same values, but only after the transform span has run (and,
    # for parallel runs, potentially inside a worker).  Constructing
    # MiningParameters here means every bad parameter fails before any
    # work starts, with the shared _validation.py messages.
    MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
    jobs = _resolve_jobs(jobs, engine)
    resilience = {
        "timeout": timeout,
        "max_retries": max_retries,
        "fallback": fallback,
        "fault_plan": fault_plan,
    }
    if not (collect_stats or trace is not None):
        with span("transform"):
            database = _as_database(data)
        result, _, _ = _run_engine(
            database, per, min_ps, min_rec, engine, jobs, resilience
        )
        return result

    collector = SpanCollector(track_memory=track_memory)
    started = time.perf_counter()
    with collector:
        with span("transform"):
            database = _as_database(data)
        result, stats, fault_events = _run_engine(
            database, per, min_ps, min_rec, engine, jobs, resilience
        )
    seconds = time.perf_counter() - started
    params: dict = {"per": per, "min_ps": min_ps, "min_rec": min_rec}
    if jobs > 1:
        params["jobs"] = jobs
    extra: dict = {}
    if fault_events:
        extra["faults"] = {
            "chunks_retried": stats.chunks_retried,
            "chunks_fallback": stats.chunks_fallback,
            "events": [event.as_dict() for event in fault_events],
        }
    telemetry = MiningTelemetry(
        engine=engine,
        params=params,
        stats=stats,
        spans=collector.spans,
        patterns_found=len(result),
        seconds=seconds,
        memory_peak_bytes=collector.memory_peak_bytes,
        dataset=dataset,
        extra=extra,
    )
    if trace is not None:
        with TraceWriter(trace) as writer:
            writer.write_run(telemetry)
    if collect_stats:
        return result, telemetry
    return result


def _resolve_jobs(jobs: Optional[int], engine: str) -> int:
    """Validate the ``jobs`` argument against the chosen engine."""
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
        raise ParameterError(f"jobs must be a positive int, got {jobs!r}")
    if jobs > 1 and engine == "naive":
        raise ParameterError(
            "engine 'naive' does not support jobs > 1; it is the "
            "exhaustive reference and stays single-process by design"
        )
    return jobs


def _run_engine(
    database: TransactionalDatabase,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int,
    engine: str,
    jobs: int = 1,
    resilience: Optional[dict] = None,
) -> Tuple[RecurringPatternSet, MiningStats, list]:
    """Dispatch to an engine: result, counters and the fault log.

    The fault log (third element) is always empty for serial runs and
    for fault-free parallel runs; ``resilience`` carries the
    supervision knobs (``timeout`` / ``max_retries`` / ``fallback`` /
    ``fault_plan``) and only applies when ``jobs > 1``.
    """
    if jobs > 1:
        from repro.parallel import ParallelMiner

        miner = ParallelMiner(
            per, min_ps, min_rec, engine=engine, jobs=jobs,
            **(resilience or {}),
        )
        result = miner.mine(database)
        return result, miner.last_stats or MiningStats(), miner.last_faults
    if engine == "rp-growth":
        miner = RPGrowth(per, min_ps, min_rec)
        result = miner.mine(database)
        return result, miner.last_stats or MiningStats(), []
    if engine == "rp-eclat":
        miner = RPEclat(per, min_ps, min_rec)
        result = miner.mine(database)
        return result, miner.last_stats or MiningStats(), []
    if engine == "rp-eclat-np":
        from repro.core.accel import FastRPEclat

        miner = FastRPEclat(per, min_ps, min_rec)
        result = miner.mine(database)
        return result, miner.last_stats or MiningStats(), []
    stats = MiningStats()
    result = mine_recurring_patterns_naive(
        database, per, min_ps, min_rec, stats=stats
    )
    return result, stats, []


def _as_database(data: Source) -> TransactionalDatabase:
    if isinstance(data, TransactionalDatabase):
        return data
    if isinstance(data, EventSequence):
        return TransactionalDatabase.from_events(data)
    raise TypeError(
        "data must be an EventSequence or TransactionalDatabase, "
        f"got {type(data).__name__}"
    )
