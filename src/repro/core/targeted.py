"""Targeted queries: recurring patterns containing given anchor items.

Analysts often start from an entity, not from thresholds: *"what recurs
together with #flood?"*, *"which alarms episode with disk_err?"*.
Mining everything and filtering answers that, but wastes the whole
search; anchoring the depth-first search at the query items explores
only the sub-lattice above them.

Because recurring patterns are not anti-monotone, the anchor itself is
*not* required to be recurring — only to be an ``Erec`` candidate
(otherwise, by Properties 1–2, no superset can be recurring either and
the answer is empty).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro._validation import Number
from repro.core.intervals import estimated_recurrence
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.rp_eclat import intersect_sorted
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["mine_patterns_containing"]


def mine_patterns_containing(
    database: TransactionalDatabase,
    anchor: Iterable[Item],
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
) -> RecurringPatternSet:
    """All recurring patterns that contain every item of ``anchor``.

    Equivalent to mining everything and keeping the supersets of
    ``anchor`` (property-tested), but explores only the anchored
    sub-lattice.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = mine_patterns_containing(
    ...     paper_running_example(), anchor="d", per=2, min_ps=3, min_rec=2)
    >>> sorted("".join(sorted(p.items)) for p in found)
    ['cd', 'd']
    """
    anchor_items = frozenset(anchor)
    if not anchor_items:
        raise ValueError("anchor must contain at least one item")
    params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
    if len(database) == 0:
        return RecurringPatternSet()
    resolved = params.resolve(len(database))

    anchor_ts: Sequence[float] = database.timestamps_of(anchor_items)
    if (
        estimated_recurrence(anchor_ts, resolved.per, resolved.min_ps)
        < resolved.min_rec
    ):
        return RecurringPatternSet()

    item_ts = database.item_timestamps()
    extensions: List[Tuple[Item, Sequence[float]]] = []
    for item in sorted(set(item_ts) - anchor_items, key=repr):
        joint = intersect_sorted(anchor_ts, item_ts[item])
        if (
            estimated_recurrence(joint, resolved.per, resolved.min_ps)
            >= resolved.min_rec
        ):
            extensions.append((item, joint))
    extensions.sort(key=lambda pair: (len(pair[1]), repr(pair[0])))

    found: List[RecurringPattern] = []

    def grow(
        extra: Tuple[Item, ...],
        ts: Sequence[float],
        remaining: List[Tuple[Item, Sequence[float]]],
    ) -> None:
        pattern = resolved.pattern_from_timestamps(
            anchor_items | frozenset(extra), ts
        )
        if pattern is not None:
            found.append(pattern)
        for index, (item, item_joint) in enumerate(remaining):
            new_ts = intersect_sorted(ts, item_joint)
            if (
                estimated_recurrence(new_ts, resolved.per, resolved.min_ps)
                >= resolved.min_rec
            ):
                grow(extra + (item,), new_ts, remaining[index + 1:])

    grow((), anchor_ts, extensions)
    return RecurringPatternSet(found)
