"""Options objects for the public mining API.

The façade historically accreted one flat keyword per knob — four
resilience knobs (PR 3) and four observability knobs (PR 1) on top of
the model thresholds.  These two frozen dataclasses bundle them so
that every entry point (:func:`repro.mine_recurring_patterns`,
:func:`repro.sweep.run_sweep`, :class:`repro.parallel.ParallelMiner`,
the CLI, the bench harness) shares the same vocabulary:

* :class:`ResilienceOptions` — how parallel chunk failures are
  detected and handled;
* :class:`ObservabilityOptions` — what is measured and where it is
  written.

The old flat keywords completed their deprecation cycle (warned since
PR 5): :func:`resolve_resilience` / :func:`resolve_observability` now
raise :class:`~repro.exceptions.ParameterError` naming the
options-object (or :class:`~repro.core.request.MiningRequest`)
replacement whenever a flat keyword is passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Dict, Optional, Union

from repro.exceptions import ParameterError

__all__ = [
    "ObservabilityOptions",
    "ResilienceOptions",
    "UNSET",
    "resolve_observability",
    "resolve_resilience",
]


class _Unset:
    """Sentinel distinguishing 'not passed' from any real value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


#: Default for deprecated flat keywords: means "the caller did not
#: pass this keyword at all".
UNSET = _Unset()


@dataclass(frozen=True)
class ResilienceOptions:
    """How parallel mining handles failing chunks (see PR 3's layer).

    Attributes
    ----------
    timeout:
        Per-chunk deadline in seconds (``None`` disables deadlines).
    max_retries:
        Failed executions a chunk may accumulate before ``fallback``
        applies (default 2).
    fallback:
        ``"serial"`` (default) re-mines exhausted chunks in-process;
        ``"raise"`` raises :class:`~repro.exceptions.ChunkFailedError`.
    fault_plan:
        A :class:`~repro.parallel.faults.FaultPlan` injecting
        deterministic worker failures — testing hook.

    All fields are ignored for serial runs (``jobs in (None, 1)``).

    Examples
    --------
    >>> ResilienceOptions(timeout=30.0).fallback
    'serial'
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    fallback: str = "serial"
    fault_plan: Optional[object] = None

    def __post_init__(self) -> None:
        if self.timeout is not None:
            if isinstance(self.timeout, bool) or not isinstance(
                self.timeout, (int, float)
            ) or self.timeout <= 0:
                raise ParameterError(
                    f"timeout must be a positive number or None, "
                    f"got {self.timeout!r}"
                )
        if isinstance(self.max_retries, bool) or not isinstance(
            self.max_retries, int
        ) or self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be a non-negative int, "
                f"got {self.max_retries!r}"
            )
        if self.fallback not in ("serial", "raise"):
            raise ParameterError(
                f"fallback must be 'serial' or 'raise', "
                f"got {self.fallback!r}"
            )


@dataclass(frozen=True)
class ObservabilityOptions:
    """What one mining run measures and where it is written.

    Attributes
    ----------
    collect_stats:
        Also return a :class:`~repro.obs.report.MiningTelemetry` as
        the second element of a tuple.
    trace:
        Path (or open text handle) for a JSON-lines trace; implies
        telemetry collection without changing the return type.
    track_memory:
        Sample per-span peak memory via ``tracemalloc`` (slower).
        Only meaningful when telemetry is collected at all — the
        façade warns and ignores it otherwise.
    dataset:
        Optional dataset label carried into the telemetry/trace.
    progress:
        Live progress/ETA lines on stderr.  ``None`` (default) = auto:
        on only when stderr is a TTY; ``True``/``False`` force it.
    metrics:
        Path (or open text handle) for periodic ``repro-metrics/v1``
        snapshot records (see :mod:`repro.obs.metrics`).  ``None``
        (default) disables metrics emission.
    metrics_interval:
        Minimum seconds between two metrics snapshots (default 1.0).
    stale_after:
        Seconds of worker-heartbeat silence before the supervisor
        reports a stale worker (default 10.0; parallel runs only).
    monitor:
        An injected :class:`~repro.obs.progress.MiningMonitor` used
        *instead* of building one from the flags above — the caller
        then owns its lifecycle (tests, the bench harness, a future
        service).

    Examples
    --------
    >>> ObservabilityOptions(collect_stats=True).enabled
    True
    >>> ObservabilityOptions(track_memory=True).enabled
    False
    """

    collect_stats: bool = False
    trace: Union[str, IO[str], None] = None
    track_memory: bool = False
    dataset: Optional[str] = None
    progress: Optional[bool] = None
    metrics: Union[str, IO[str], None] = None
    metrics_interval: float = 1.0
    stale_after: float = 10.0
    monitor: Optional[object] = None

    def __post_init__(self) -> None:
        if isinstance(self.metrics_interval, bool) or not isinstance(
            self.metrics_interval, (int, float)
        ) or self.metrics_interval <= 0:
            raise ParameterError(
                f"metrics_interval must be a positive number, "
                f"got {self.metrics_interval!r}"
            )
        if isinstance(self.stale_after, bool) or not isinstance(
            self.stale_after, (int, float)
        ) or self.stale_after <= 0:
            raise ParameterError(
                f"stale_after must be a positive number, "
                f"got {self.stale_after!r}"
            )
        if self.progress is not None and not isinstance(
            self.progress, bool
        ):
            raise ParameterError(
                f"progress must be True, False or None (auto), "
                f"got {self.progress!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when telemetry is built at all (stats or trace)."""
        return bool(self.collect_stats) or self.trace is not None

    @property
    def live(self) -> bool:
        """True when any live output is requested (progress/metrics)."""
        return (
            bool(self.progress)
            or self.metrics is not None
            or self.monitor is not None
        )


def _resolve(
    kind: str,
    options,
    flat: Dict[str, object],
    factory,
    stacklevel: int,
):
    passed = {
        name: value for name, value in flat.items() if value is not UNSET
    }
    if not passed:
        return options if options is not None else factory()
    if options is not None:
        raise ParameterError(
            f"pass either {kind}={factory.__name__}(...) or the flat "
            f"keyword(s) {sorted(passed)} — not both"
        )
    raise ParameterError(
        f"the flat keyword(s) {sorted(passed)} were removed; pass "
        f"{kind}={factory.__name__}(...) or build a MiningRequest "
        f"(see docs/api.md)"
    )


def resolve_resilience(
    resilience: Optional[ResilienceOptions],
    *,
    stacklevel: int = 4,
    **flat,
) -> ResilienceOptions:
    """Reject removed flat resilience keywords, resolve the object.

    ``flat`` values equal to :data:`UNSET` count as "not passed".
    Raises :class:`~repro.exceptions.ParameterError` naming the
    options-object replacement when any flat keyword is used (the
    deprecation cycle is over); returns ``resilience`` (or a default
    instance) otherwise.
    """
    return _resolve(
        "resilience", resilience, flat, ResilienceOptions, stacklevel
    )


def resolve_observability(
    observability: Optional[ObservabilityOptions],
    *,
    stacklevel: int = 4,
    **flat,
) -> ObservabilityOptions:
    """Reject removed flat observability keywords, as above."""
    return _resolve(
        "observability", observability, flat, ObservabilityOptions,
        stacklevel,
    )
