"""The batched columnar vertical engine (``rp-eclat-vec``).

:class:`~repro.core.accel.FastRPEclat` (``rp-eclat-np``) already swaps
the per-candidate *arithmetic* to NumPy, but still walks the lattice one
edge at a time — a dozen tiny array calls per extension, whose fixed
dispatch overhead dwarfs the work on real candidate lists.  This engine
changes the unit of vectorisation from the edge to the **lattice
level**: the candidate lattice is explored breadth-first, and all
extension edges of a whole level are evaluated in one batched pass —

1. ts-lists are transaction-id arrays into the shared
   :class:`~repro.timeseries.columnar.ColumnarTDB` timestamp column,
   concatenated per level in one CSR block.  A node's extension
   candidates are its later siblings (``TS(X∪p∪q) = TS(X∪p) ∩
   TS(X∪q)``), so each node's extension ts-lists form one *contiguous
   suffix* of its family's block — per node only a three-operation
   dense-bitmap membership gather remains (``searchsorted`` when the
   node's list dwarfs the suffix; crossover measured in
   ``benchmarks/bench_kernel.py``);
2. one segmented ``np.diff`` + run-length-encoding sweep
   (:func:`~repro.core.accel.segmented_interval_stats`) scores the
   ``Erec`` bound of *every* intersection of the level and extracts its
   interesting runs, so children reach the next level with their
   intervals already computed — no per-candidate python loop anywhere;
3. surviving intersections are compacted level-wide into the next
   level's CSR block.

Pruning is the paper's ``Erec`` bound, which is anti-monotone: an
extension that fails at a node fails in the whole subtree, so dropping
it from the children's sibling lists visits exactly the node set
``rp-eclat`` visits (``candidate_patterns`` / ``recurrence_evaluations``
parity) while skipping re-evaluation of dead edges.  All counters are
additive over nodes and edges, so the breadth-first order changes no
total — including against this engine's own parallel runs.

The engine speaks the standard vertical worker protocol
(``_first_scan`` / ``_grow``), so :class:`~repro.parallel.ParallelMiner`
prefix-partitions it like any other vertical engine; ``_grow`` runs the
same level loop seeded with a single root.  Workers receive the shared
timestamp column through a :class:`VecContext` shipped once via the
pool initializer.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import Number
from repro.core.accel import _segmented_interval_stats
from repro.core.model import (
    MiningParameters,
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
    ResolvedParameters,
)
from repro.core.ordering import sort_candidates
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["RPEclatVec", "VecContext"]


class VecContext(NamedTuple):
    """Shared read-only state a vec worker needs besides its candidates.

    Shipped once per worker through the pool initializer (like the
    candidate list itself): the timestamp column that transaction-id
    arrays index into, and the id universe for the membership bitmap.
    """

    timestamps: np.ndarray
    n_transactions: int


class _Level(NamedTuple):
    """One breadth-first frontier: all live lattice nodes of one length.

    ``block`` holds every node's transaction-id list concatenated
    (node ``i`` spans ``ptr[i]:ptr[i + 1]``); ``fam_ptr`` partitions the
    nodes into families (children of one parent) — a node's extension
    candidates are its later siblings, a contiguous suffix of its
    family's block.  The interesting runs of every node arrive
    precomputed from the parent level's batched sweep as the CSR
    ``run_ptr`` over the ``run_*`` arrays.
    """

    itemsets: List[Tuple[Item, ...]]
    block: np.ndarray
    ptr: np.ndarray
    fam_ptr: np.ndarray
    run_ptr: np.ndarray
    run_start_ts: np.ndarray
    run_end_ts: np.ndarray
    run_ps: np.ndarray


_SINGLE_START = np.zeros(1, dtype=np.int64)
_ZERO = np.zeros(1, dtype=np.int64)


class RPEclatVec:
    """Breadth-first vertical miner with per-level batched NumPy kernels.

    Parameters
    ----------
    per, min_ps, min_rec:
        Model thresholds, as for :class:`~repro.core.rp_eclat.RPEclat`.
    max_length:
        Stop extending patterns at this length (``None`` = unlimited).

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = RPEclatVec(per=2, min_ps=3, min_rec=2).mine(
    ...     paper_running_example())
    >>> sorted("".join(sorted(p.items)) for p in found)
    ['a', 'ab', 'b', 'cd', 'd', 'e', 'ef', 'f']
    """

    def __init__(
        self,
        per: Number,
        min_ps: Union[int, float],
        min_rec: int,
        max_length: Union[int, None] = None,
    ):
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        if max_length is not None and max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length!r}")
        self.max_length = max_length
        self.last_stats: Optional[MiningStats] = None
        #: The :class:`VecContext` of the last ``_first_scan``; the
        #: parallel layer ships it to workers alongside the candidates.
        self.parallel_context: Optional[VecContext] = None
        self._mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Worker-protocol surface
    # ------------------------------------------------------------------
    def attach_context(self, context: VecContext) -> None:
        """Install the shared column state (worker-side counterpart of
        the ``parallel_context`` produced by ``_first_scan``)."""
        self.parallel_context = context
        self._mask = np.zeros(context.n_transactions, dtype=bool)

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine the complete set of recurring patterns in ``database``."""
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))

        with span("first_scan"):
            candidates = self._first_scan(database, params, stats)

        found: List[RecurringPattern] = []
        with span("mine"):
            if candidates:
                # Level 1 is one family of all surviving items: the
                # level loop emits their patterns and forms every
                # (i < j) extension pair, exactly the union of the
                # per-root subtrees the parallel partition hands out.
                block = np.concatenate([row for _, row in candidates])
                ptr = np.zeros(len(candidates) + 1, dtype=np.int64)
                np.cumsum([row.size for _, row in candidates], out=ptr[1:])
                seq = self.parallel_context.timestamps[block]
                _, _, run_seg, run_first, run_last = _segmented_interval_stats(
                    seq, ptr[:-1], params.per, params.min_ps
                )
                level = _Level(
                    itemsets=[(item,) for item, _ in candidates],
                    block=block,
                    ptr=ptr,
                    fam_ptr=np.array([0, len(candidates)], dtype=np.int64),
                    run_ptr=self._run_csr(run_seg, len(candidates)),
                    run_start_ts=seq[run_first],
                    run_end_ts=seq[run_last],
                    run_ps=run_last - run_first + 1,
                )
                self._mine_levels(level, False, params, found, stats)
        return RecurringPatternSet(found)

    def _first_scan(
        self,
        database: TransactionalDatabase,
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> List[Tuple[Item, np.ndarray]]:
        """Candidate 1-items with their id arrays, in canonical order.

        One segmented kernel call scores the ``Erec`` bound of *every*
        item: the concatenated CSR rows of the columnar view are
        already the per-item point sequences laid end to end.
        """
        column = database.columnar()
        self.attach_context(VecContext(column.timestamps, column.n_transactions))
        n_items = len(column.items)
        stats.erec_evaluations += n_items
        if n_items == 0:
            stats.candidate_items = 0
            return []
        erec, _, _, _, _ = _segmented_interval_stats(
            column.timestamps[column.indices],
            column.indptr[:-1],
            params.per,
            params.min_ps,
        )
        keep = erec >= params.min_rec
        candidates: List[Tuple[Item, np.ndarray]] = []
        for position in np.flatnonzero(keep).tolist():
            row = column.item_rows(position)
            candidates.append((column.items[position], row))
            stats.tid_list_entries += row.size
        stats.pruned_items += n_items - len(candidates)
        stats.candidate_items = len(candidates)
        return sort_candidates(candidates)

    def _grow(
        self,
        prefix: Tuple[Item, ...],
        prefix_idx: np.ndarray,
        extensions: Sequence[Tuple[Item, np.ndarray]],
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        """Mine the subtree rooted at ``prefix`` (worker-protocol entry).

        Runs the same level loop as :meth:`mine`, seeded with a
        restricted level: only node 0 (the prefix) emits its pattern
        and forms pairs — its siblings here are the *other* roots,
        whose subtrees belong to other chunks.
        """
        if self.parallel_context is None:
            raise RuntimeError(
                "rp-eclat-vec context not attached; run _first_scan or "
                "attach_context() first"
            )
        prefix_idx = np.asarray(prefix_idx)
        rows = [prefix_idx] + [row for _, row in extensions]
        n = len(rows)
        block = np.concatenate(rows) if n > 1 else prefix_idx
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([row.size for row in rows], out=ptr[1:])
        seq = self.parallel_context.timestamps[prefix_idx]
        _, _, _, run_first, run_last = _segmented_interval_stats(
            seq, _SINGLE_START, params.per, params.min_ps
        )
        run_ptr = np.full(n + 1, run_first.size, dtype=np.int64)
        run_ptr[0] = 0
        level = _Level(
            itemsets=[prefix] + [(item,) for item, _ in extensions],
            block=block,
            ptr=ptr,
            fam_ptr=np.array([0, n], dtype=np.int64),
            run_ptr=run_ptr,
            run_start_ts=seq[run_first],
            run_end_ts=seq[run_last],
            run_ps=run_last - run_first + 1,
        )
        self._mine_levels(level, True, params, found, stats)

    # ------------------------------------------------------------------
    # The level loop
    # ------------------------------------------------------------------
    def _mine_levels(
        self,
        level: _Level,
        only_first: bool,
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        """Emit every level's patterns and batch-score its extensions.

        ``only_first`` restricts the *seed* level to node 0 (the
        ``_grow`` entry); deeper levels always process every node.
        """
        ts_col = self.parallel_context.timestamps
        min_rec = params.min_rec
        while True:
            n = len(level.itemsets)
            ptr = level.ptr
            emit_n = 1 if only_first else n
            self._emit(level, emit_n, min_rec, found, stats)
            if (
                self.max_length is not None
                and len(level.itemsets[0]) >= self.max_length
            ):
                return
            # ---- pair generation ----
            # The pair/node/counter sets are order-independent (all
            # pairs of surviving siblings are always formed), so pick
            # the cheaper gather orientation: mask each node and gather
            # its *earlier* siblings — candidates are rarest-first, so
            # the gathered prefix blocks are the short ones.  A _grow
            # seed instead masks its single left node (the prefix)
            # once and gathers the whole suffix in one operation.
            ptr_l = ptr.tolist()
            sizes = np.diff(ptr)
            if only_first:
                only_first = False
                total_pairs = n - 1
                if total_pairs == 0:
                    return
                pair_left = np.zeros(total_pairs, dtype=np.int64)
                pair_right = np.arange(1, n)
                flags = self._member_flags(
                    level.block[: ptr_l[1]], level.block[ptr_l[1]:]
                )
                ext_concat = level.block[ptr_l[1]:]
                block_sizes = sizes[pair_right]
            else:
                fam_sizes = np.diff(level.fam_ptr)
                fam_start = np.repeat(level.fam_ptr[:-1], fam_sizes)
                pc = np.arange(n) - fam_start
                total_pairs = int(pc.sum())
                if total_pairs == 0:
                    return
                pair_right = np.repeat(np.arange(n), pc)
                group_start = np.cumsum(pc) - pc
                pair_left = (
                    np.arange(total_pairs)
                    - np.repeat(group_start, pc)
                    + np.repeat(fam_start, pc)
                )
                fam_start_l = fam_start.tolist()
                pc_l = pc.tolist()
                flag_parts = []
                ext_parts = []
                block = level.block
                mask = self._mask
                # _member_flags, inlined: this loop runs once per node
                # and is the only per-node work in the engine.
                for k in range(n):
                    if not pc_l[k]:
                        continue
                    lo, mid, hi2 = ptr_l[fam_start_l[k]], ptr_l[k], ptr_l[k + 1]
                    earlier = block[lo:mid]
                    seg = block[mid:hi2]
                    if hi2 - mid > 4 * (mid - lo):
                        pos = np.searchsorted(seg, earlier)
                        np.minimum(pos, hi2 - mid - 1, out=pos)
                        flag_parts.append(seg[pos] == earlier)
                    else:
                        mask[seg] = True
                        flag_parts.append(mask[earlier])
                        mask[seg] = False
                    ext_parts.append(earlier)
                flags = (
                    flag_parts[0]
                    if len(flag_parts) == 1
                    else np.concatenate(flag_parts)
                )
                ext_concat = (
                    ext_parts[0]
                    if len(ext_parts) == 1
                    else np.concatenate(ext_parts)
                )
                block_sizes = sizes[pair_left]
            # ---- batched intersection of every pair ----
            kept = np.flatnonzero(flags)
            inter = ext_concat[kept]
            hi = np.searchsorted(kept, np.cumsum(block_sizes))
            counts = np.diff(hi, prepend=0)
            stats.erec_evaluations += total_pairs
            stats.tid_list_entries += int(inter.size)
            inter_ptr = np.concatenate((_ZERO, hi))
            # ---- batched Erec bound + interval runs ----
            ts_inter = ts_col[inter]
            erec, _, run_pair, run_first, run_last = _segmented_interval_stats(
                ts_inter, inter_ptr[:-1], params.per, params.min_ps
            )
            surv_flag = erec >= min_rec
            surv = np.flatnonzero(surv_flag)
            if surv.size == 0:
                return
            # ---- regroup survivors into the next level's families ----
            # Children of one parent (pair_left) must share a family;
            # the gather orientation grouped pairs by right node, so a
            # stable sort by parent restores the family layout.
            surv_left = pair_left[surv]
            if surv_left.size > 1 and np.any(np.diff(surv_left) < 0):
                order = np.argsort(surv_left, kind="stable")
                surv = surv[order]
                surv_left = surv_left[order]
            counts_surv = counts[surv]
            ptr_next = np.concatenate((_ZERO, np.cumsum(counts_surv)))
            gather = (
                np.arange(int(ptr_next[-1]))
                - np.repeat(ptr_next[:-1], counts_surv)
                + np.repeat(inter_ptr[:-1][surv], counts_surv)
            )
            block_next = inter[gather]
            # Runs follow the same regrouping: map each kept run to its
            # child index and stably sort runs by child (time order
            # within a child is preserved).
            run_keep = surv_flag[run_pair]
            run_pair = run_pair[run_keep]
            run_first = run_first[run_keep]
            run_last = run_last[run_keep]
            survpos_of_pair = np.cumsum(surv_flag) - 1
            child_index = np.empty(surv.size, dtype=np.int64)
            child_index[survpos_of_pair[surv]] = np.arange(surv.size)
            run_child = child_index[survpos_of_pair[run_pair]]
            if run_child.size > 1 and np.any(np.diff(run_child) < 0):
                run_order = np.argsort(run_child, kind="stable")
                run_child = run_child[run_order]
                run_first = run_first[run_order]
                run_last = run_last[run_order]
            itemsets = level.itemsets
            level = _Level(
                itemsets=[
                    itemsets[left] + (itemsets[right][-1],)
                    for left, right in zip(
                        surv_left.tolist(), pair_right[surv].tolist()
                    )
                ],
                block=block_next,
                ptr=ptr_next,
                fam_ptr=self._family_bounds(surv_left),
                run_ptr=self._run_csr(run_child, surv.size),
                run_start_ts=ts_inter[run_first],
                run_end_ts=ts_inter[run_last],
                run_ps=run_last - run_first + 1,
            )

    def _emit(
        self,
        level: _Level,
        emit_n: int,
        min_rec: int,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        """Materialise the recurring patterns among ``level``'s nodes.

        The value objects are built through ``object.__new__``, skipping
        the dataclass ``__init__``/``__post_init__`` validation: the
        kernel guarantees the invariants by construction (runs are
        time-ordered so ``end >= start``, every run has ``ps >= 1``,
        itemsets are non-empty, support is a list length).  The objects
        are attribute-identical to validated ones, so equality, hashing
        and ordering are unchanged.
        """
        stats.candidate_patterns += emit_n
        stats.recurrence_evaluations += emit_n
        run_ptr = level.run_ptr.tolist()
        starts = level.run_start_ts.tolist()
        ends = level.run_end_ts.tolist()
        ps = level.run_ps.tolist()
        sizes = np.diff(level.ptr).tolist()
        itemsets = level.itemsets
        new = object.__new__
        put = object.__setattr__
        for i in range(emit_n):
            lo, hi = run_ptr[i], run_ptr[i + 1]
            if hi - lo < min_rec:
                continue
            stats.patterns_found += 1
            intervals = []
            for j in range(lo, hi):
                interval = new(PeriodicInterval)
                put(interval, "start", starts[j])
                put(interval, "end", ends[j])
                put(interval, "periodic_support", ps[j])
                intervals.append(interval)
            pattern = new(RecurringPattern)
            put(pattern, "items", frozenset(itemsets[i]))
            put(pattern, "support", sizes[i])
            put(pattern, "intervals", tuple(intervals))
            found.append(pattern)

    # ------------------------------------------------------------------
    # Small array helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _run_csr(run_node: np.ndarray, n_nodes: int) -> np.ndarray:
        """CSR pointer over runs grouped by (nondecreasing) node id."""
        run_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(run_node, minlength=n_nodes), out=run_ptr[1:]
        )
        return run_ptr

    @staticmethod
    def _family_bounds(surv_left: np.ndarray) -> np.ndarray:
        """Family boundaries of the next level: children grouped by
        parent (``surv_left`` is nondecreasing)."""
        if surv_left.size == 1:
            return np.array([0, 1], dtype=np.int64)
        steps = np.flatnonzero(np.diff(surv_left)) + 1
        return np.concatenate(
            (_ZERO, steps, np.array([surv_left.size], dtype=np.int64))
        )

    def _member_flags(
        self, node_idx: np.ndarray, suffix: np.ndarray
    ) -> np.ndarray:
        """Which of ``suffix``'s ids the node's list also contains.

        The dense scratch bitmap is O(2·|node| + |suffix|) with tiny
        constants; when the node's list dwarfs the suffix a binary
        search over it is cheaper (crossover measured in
        ``benchmarks/bench_kernel.py``).
        """
        if node_idx.size > 4 * suffix.size:
            pos = np.searchsorted(node_idx, suffix)
            np.minimum(pos, node_idx.size - 1, out=pos)
            return node_idx[pos] == suffix
        mask = self._mask
        mask[node_idx] = True
        flags = mask[suffix]
        mask[node_idx] = False
        return flags
