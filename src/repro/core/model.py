"""Dataclasses for the recurring-pattern model (Definitions 3–11).

The two value types here — :class:`PeriodicInterval` and
:class:`RecurringPattern` — are what every mining engine returns, and
:class:`RecurringPatternSet` is the ordered, queryable collection the
public façade hands back.  :class:`MiningParameters` bundles and
validates the three user thresholds ``per``, ``minPS`` and ``minRec``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._validation import (
    Number,
    check_count,
    check_count_threshold,
    check_positive,
    resolve_count_threshold,
)
from repro.core.intervals import interesting_intervals
from repro.timeseries.events import Item

__all__ = [
    "PeriodicInterval",
    "RecurringPattern",
    "RecurringPatternSet",
    "MiningParameters",
]


@dataclass(frozen=True, order=True)
class PeriodicInterval:
    """One interesting periodic-interval of a pattern (Definitions 5–7).

    Attributes
    ----------
    start, end:
        First and last occurrence timestamp of the maximal periodic run
        (``pi = [ts_p, ts_q]``).
    periodic_support:
        Number of occurrences inside the run (``ps``).
    """

    start: float
    end: float
    periodic_support: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )
        check_count(self.periodic_support, "periodic_support")

    @property
    def duration(self) -> float:
        """``end - start``; zero for a single-occurrence interval."""
        return self.end - self.start

    def __str__(self) -> str:
        return f"[{self.start:g}, {self.end:g}]:{self.periodic_support}"


@dataclass(frozen=True)
class RecurringPattern:
    """A recurring pattern with its full temporal description (Eq. 1).

    Attributes
    ----------
    items:
        The itemset ``X``.
    support:
        ``Sup(X)`` — total number of transactions containing ``X``.
    intervals:
        The interesting periodic-intervals ``IPI^X`` in time order.

    The paper's expression
    ``X [Sup(X), Rec(X), {{pi : ps}}]`` corresponds to
    ``items [support, recurrence, intervals]``.
    """

    items: FrozenSet[Item]
    support: int
    intervals: Tuple[PeriodicInterval, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a pattern must contain at least one item")
        object.__setattr__(self, "items", frozenset(self.items))
        object.__setattr__(self, "intervals", tuple(self.intervals))
        check_count(self.support, "support")

    @property
    def recurrence(self) -> int:
        """``Rec(X)`` — the number of interesting periodic-intervals."""
        return len(self.intervals)

    @property
    def length(self) -> int:
        """Number of items in the pattern."""
        return len(self.items)

    def sorted_items(self) -> Tuple[Item, ...]:
        """Items in a deterministic (repr-sorted) order for display."""
        return tuple(sorted(self.items, key=repr))

    def __str__(self) -> str:
        body = ", ".join(str(interval) for interval in self.intervals)
        items = "".join(str(item) for item in self.sorted_items())
        return (
            f"{items} [support={self.support}, "
            f"recurrence={self.recurrence}, {{{body}}}]"
        )


class RecurringPatternSet:
    """An ordered, queryable collection of recurring patterns.

    Patterns are kept sorted by (length, sorted items) so output is
    deterministic across engines and runs, which the equivalence tests
    rely on.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro.core import mine_recurring_patterns
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> found.pattern("ab").support
    7
    """

    def __init__(self, patterns: Iterable[RecurringPattern] = ()):
        ordered = sorted(
            patterns, key=lambda p: (p.length, p.sorted_items())
        )
        self._patterns: Tuple[RecurringPattern, ...] = tuple(ordered)
        self._by_items: Dict[FrozenSet[Item], RecurringPattern] = {
            pattern.items: pattern for pattern in self._patterns
        }
        if len(self._by_items) != len(self._patterns):
            raise ValueError("duplicate patterns in result set")

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[RecurringPattern]:
        return iter(self._patterns)

    def __contains__(self, items: Iterable[Item]) -> bool:
        return frozenset(items) in self._by_items

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecurringPatternSet):
            return NotImplemented
        return self._patterns == other._patterns

    def __repr__(self) -> str:
        return f"RecurringPatternSet({len(self._patterns)} patterns)"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> Tuple[RecurringPattern, ...]:
        return self._patterns

    def pattern(self, items: Iterable[Item]) -> RecurringPattern:
        """The pattern with exactly ``items``; raises ``KeyError`` if absent."""
        return self._by_items[frozenset(items)]

    def get(
        self, items: Iterable[Item], default: Optional[RecurringPattern] = None
    ) -> Optional[RecurringPattern]:
        """The pattern with exactly ``items``, or ``default``."""
        return self._by_items.get(frozenset(items), default)

    def itemsets(self) -> FrozenSet[FrozenSet[Item]]:
        """The set of discovered itemsets (ignores metadata)."""
        return frozenset(self._by_items)

    def max_length(self) -> int:
        """Length of the longest pattern; 0 when empty (Table 8's 'II')."""
        return max((p.length for p in self._patterns), default=0)

    def filter(
        self,
        min_length: int = 1,
        min_support: int = 1,
        min_recurrence: int = 1,
    ) -> "RecurringPatternSet":
        """Sub-collection passing all the given floors."""
        return RecurringPatternSet(
            p
            for p in self._patterns
            if p.length >= min_length
            and p.support >= min_support
            and p.recurrence >= min_recurrence
        )

    def top(self, n: int, key: str = "support") -> List[RecurringPattern]:
        """The ``n`` patterns with the largest ``key`` attribute."""
        if key not in ("support", "recurrence", "length"):
            raise ValueError(f"unknown sort key {key!r}")
        return sorted(
            self._patterns,
            key=lambda p: (getattr(p, key), p.sorted_items()),
            reverse=True,
        )[:n]

    def as_rows(self) -> List[Tuple[str, int, int, str]]:
        """(items, support, recurrence, intervals) display rows (Table 2)."""
        rows = []
        for pattern in self._patterns:
            items = "".join(str(item) for item in pattern.sorted_items())
            ipi = ", ".join(str(iv) for iv in pattern.intervals)
            rows.append((items, pattern.support, pattern.recurrence, ipi))
        return rows


@dataclass(frozen=True)
class MiningParameters:
    """The three user thresholds of the model (Definition 10).

    Attributes
    ----------
    per:
        Period threshold: an inter-arrival time is periodic when it is
        ≤ ``per``.  Must be > 0.
    min_ps:
        Minimum periodic-support.  An ``int`` is an absolute occurrence
        count; a ``float`` in ``(0, 1]`` is a fraction of the database
        size (resolved via :meth:`resolve`).
    min_rec:
        Minimum recurrence count (positive integer).
    """

    per: Number
    min_ps: Union[int, float]
    min_rec: int

    def __post_init__(self) -> None:
        check_positive(self.per, "per")
        check_count(self.min_rec, "min_rec")
        # Full count-or-fraction validation up front: a float outside
        # (0, 1] used to slip through construction and only fail at
        # resolve time, midway through a mine() call.
        check_count_threshold(self.min_ps, "min_ps")

    def resolve(self, database_size: int) -> "ResolvedParameters":
        """Fix fractional ``min_ps`` against a concrete database size."""
        min_ps = resolve_count_threshold(self.min_ps, "min_ps", database_size)
        return ResolvedParameters(
            per=self.per, min_ps=min_ps, min_rec=self.min_rec
        )


@dataclass(frozen=True)
class ResolvedParameters:
    """Mining thresholds with ``min_ps`` as an absolute count."""

    per: Number
    min_ps: int
    min_rec: int

    def pattern_from_timestamps(
        self, items: Iterable[Item], timestamps: Sequence[float]
    ) -> Optional[RecurringPattern]:
        """Build the :class:`RecurringPattern` for ``items`` if recurring.

        Returns ``None`` when the point sequence does not have at least
        ``min_rec`` interesting periodic-intervals.  This is the single
        place where raw interval tuples become result objects, shared by
        all engines.
        """
        runs = interesting_intervals(timestamps, self.per, self.min_ps)
        if len(runs) < self.min_rec:
            return None
        return RecurringPattern(
            items=frozenset(items),
            support=len(timestamps),
            intervals=tuple(
                PeriodicInterval(start, end, ps) for start, end, ps in runs
            ),
        )
