"""Periodic-interval mathematics (Definitions 4–8 of the paper).

Everything in this module operates on an *ordered* sequence of
occurrence timestamps (a point sequence, ``TS^X``).  The functions are
the single source of truth for the model's measures; every mining
engine — RP-growth, the vertical engine and the exhaustive reference —
delegates here, which is what makes the cross-engine equivalence tests
meaningful.

Glossary (paper notation):

* ``iat`` — inter-arrival time between two consecutive occurrences;
* *periodic-interval* ``pi`` — a maximal run of consecutive timestamps
  whose inter-arrival times are all ≤ ``per`` (Definition 5);
* *periodic-support* ``ps`` — the number of timestamps in a run
  (Definition 6);
* *interesting* periodic-interval — one with ``ps ≥ minPS``
  (Definition 7);
* *recurrence* ``Rec`` — the number of interesting periodic-intervals
  (Definition 8);
* ``Erec`` — the estimated maximum recurrence of any superset,
  ``Σ floor(ps_i / minPS)`` (Section 4.1), the pruning bound.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro._validation import check_count, check_positive

__all__ = [
    "inter_arrival_times",
    "periodic_intervals",
    "interesting_intervals",
    "periodic_supports",
    "recurrence",
    "estimated_recurrence",
]

# A raw periodic-interval: (start timestamp, end timestamp, periodic support).
RawInterval = Tuple[float, float, int]


def inter_arrival_times(timestamps: Sequence[float]) -> Tuple[float, ...]:
    """``IAT^X``: differences between consecutive occurrence timestamps.

    Examples
    --------
    >>> inter_arrival_times([1, 3, 4, 7, 11, 12, 14])
    (2, 1, 3, 4, 1, 2)
    """
    return tuple(
        later - earlier for earlier, later in zip(timestamps, timestamps[1:])
    )


def periodic_intervals(
    timestamps: Sequence[float], per: float
) -> List[RawInterval]:
    """All maximal periodic-intervals of a point sequence (Definition 5).

    A run is maximal when extending it on either side would include an
    inter-arrival time larger than ``per``.  Every timestamp belongs to
    exactly one run; an isolated occurrence forms a run of
    periodic-support 1.

    Parameters
    ----------
    timestamps:
        Occurrence timestamps in strictly increasing order.
    per:
        The period threshold (> 0).

    Returns
    -------
    list of ``(start, end, periodic_support)`` tuples in time order.

    Examples
    --------
    The paper's Example 5 (pattern ``ab``, ``per = 2``):

    >>> periodic_intervals([1, 3, 4, 7, 11, 12, 14], per=2)
    [(1, 4, 3), (7, 7, 1), (11, 14, 3)]
    """
    check_positive(per, "per")
    return list(_iter_runs(timestamps, per))


def periodic_supports(timestamps: Sequence[float], per: float) -> List[int]:
    """``PS^X``: the periodic-support of every periodic-interval.

    Examples
    --------
    >>> periodic_supports([1, 3, 4, 7, 11, 12, 14], per=2)
    [3, 1, 3]
    """
    check_positive(per, "per")
    return [ps for _, _, ps in _iter_runs(timestamps, per)]


def interesting_intervals(
    timestamps: Sequence[float], per: float, min_ps: int
) -> List[RawInterval]:
    """``IPI^X``: periodic-intervals with ``ps ≥ min_ps`` (Definition 7).

    Examples
    --------
    >>> interesting_intervals([1, 3, 4, 7, 11, 12, 14], per=2, min_ps=3)
    [(1, 4, 3), (11, 14, 3)]
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    return [run for run in _iter_runs(timestamps, per) if run[2] >= min_ps]


def recurrence(timestamps: Sequence[float], per: float, min_ps: int) -> int:
    """``Rec(X)``: the number of interesting periodic-intervals.

    This is the paper's Algorithm 5 (``getRecurrence``) as a pure
    function: a single forward scan that counts maximal runs of length
    at least ``min_ps``.

    Examples
    --------
    >>> recurrence([1, 3, 4, 7, 11, 12, 14], per=2, min_ps=3)
    2
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    count = 0
    for _, _, ps in _iter_runs(timestamps, per):
        if ps >= min_ps:
            count += 1
    return count


def estimated_recurrence(
    timestamps: Sequence[float], per: float, min_ps: int
) -> int:
    """``Erec(X) = Σ floor(ps_i / min_ps)`` — the pruning bound (Sec. 4.1).

    ``Erec`` upper-bounds the recurrence of ``X`` *and of every superset
    of X* (Properties 1–2), because a superset's timestamps are a subset
    of ``X``'s and any single run of length ``ps`` can split into at most
    ``floor(ps / min_ps)`` interesting runs.

    Examples
    --------
    The paper's Example 11 (item ``g``, ``per=2, minPS=3``):

    >>> estimated_recurrence([1, 5, 6, 7, 12, 14], per=2, min_ps=3)
    1
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    total = 0
    for _, _, ps in _iter_runs(timestamps, per):
        total += ps // min_ps
    return total


def _iter_runs(
    timestamps: Sequence[float], per: float
) -> Iterator[RawInterval]:
    """Yield maximal periodic runs as ``(start, end, ps)`` tuples.

    The input must be strictly increasing; this is guaranteed by the
    unique-timestamp invariant of
    :class:`~repro.timeseries.database.TransactionalDatabase`, and
    asserted cheaply here to catch misuse early.
    """
    iterator = iter(timestamps)
    try:
        start = previous = next(iterator)
    except StopIteration:
        return
    ps = 1
    for current in iterator:
        if current <= previous:
            raise ValueError(
                "timestamps must be strictly increasing; "
                f"saw {previous!r} then {current!r}"
            )
        if current - previous <= per:
            ps += 1
        else:
            yield (start, previous, ps)
            start = current
            ps = 1
        previous = current
    yield (start, previous, ps)
