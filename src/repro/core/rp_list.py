"""RP-list construction — Algorithm 1 of the paper.

The RP-list is the candidate-item table: one entry per distinct item
holding its support and its *estimated maximum recurrence* ``Erec``,
both computed in a single streaming scan of the database.  Items with
``Erec < minRec`` can be pruned outright (no recurring pattern can
contain them, by Properties 1–2), and the survivors — the *candidate
items* — are sorted in support-descending order, which is the global
item order used by the RP-tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.model import ResolvedParameters
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["RPListEntry", "RPList", "build_rp_list"]


@dataclass
class RPListEntry:
    """Streaming per-item state of Algorithm 1.

    Attributes mirror the paper's arrays: ``support`` is ``s``,
    ``erec`` is the accumulated estimated recurrence, ``last_ts`` is
    ``idl`` (the timestamp of the item's latest appearance) and
    ``current_ps`` is ``ps`` (the periodic-support of the run currently
    being extended).
    """

    item: Item
    support: int = 0
    erec: int = 0
    last_ts: float = 0.0
    current_ps: int = 0

    def observe(self, ts: float, per: float, min_ps: int) -> None:
        """Account for one occurrence of the item at timestamp ``ts``."""
        if self.support == 0:
            # First appearance (lines 3-5): start the first run.
            self.support = 1
            self.current_ps = 1
        elif ts - self.last_ts <= per:
            # The run continues (lines 7-8).
            self.support += 1
            self.current_ps += 1
        else:
            # The run broke (lines 10-11): bank its Erec contribution
            # and start a new run at ts.
            self.erec += self.current_ps // min_ps
            self.support += 1
            self.current_ps = 1
        self.last_ts = ts

    def finalize(self, min_ps: int) -> None:
        """Bank the trailing run (line 15 of Algorithm 1)."""
        self.erec += self.current_ps // min_ps
        self.current_ps = 0


class RPList:
    """The finished candidate-item list.

    Attributes
    ----------
    entries:
        All items scanned, keyed by item (pre-pruning), for inspection
        and tests against the paper's Figure 4.
    candidates:
        Candidate items (``Erec ≥ minRec``) in support-descending order,
        ties broken by item repr so the order is deterministic.
    """

    def __init__(self, entries: Dict[Item, RPListEntry], min_rec: int):
        self.entries: Dict[Item, RPListEntry] = entries
        survivors = [
            entry for entry in entries.values() if entry.erec >= min_rec
        ]
        survivors.sort(key=lambda e: (-e.support, repr(e.item)))
        self.candidates: Tuple[Item, ...] = tuple(e.item for e in survivors)
        self._rank: Dict[Item, int] = {
            item: rank for rank, item in enumerate(self.candidates)
        }

    def __len__(self) -> int:
        return len(self.candidates)

    def __contains__(self, item: Item) -> bool:
        return item in self._rank

    def rank(self, item: Item) -> int:
        """Position of a candidate item in the global tree order."""
        return self._rank[item]

    def sort_transaction(self, items: frozenset) -> List[Item]:
        """Candidate-item projection of a transaction, in tree order.

        This is the ``CI(t)`` projection plus the support-descending
        sort applied before inserting each transaction into the RP-tree
        (Algorithm 2, line 4).
        """
        rank = self._rank
        return sorted(
            (item for item in items if item in rank),
            key=rank.__getitem__,
        )


def build_rp_list(
    database: TransactionalDatabase, params: ResolvedParameters
) -> RPList:
    """Run Algorithm 1: one scan of ``database`` producing the RP-list.

    Examples
    --------
    With the paper's running example and ``per=2, minPS=3, minRec=2``,
    item ``g`` is pruned (its Erec is 1) and the candidates come out in
    support-descending order (Figure 4(f)):

    >>> from repro.datasets import paper_running_example
    >>> from repro.core.model import MiningParameters
    >>> db = paper_running_example()
    >>> rp_list = build_rp_list(
    ...     db, MiningParameters(2, 3, 2).resolve(len(db)))
    >>> rp_list.candidates
    ('a', 'b', 'c', 'd', 'e', 'f')
    """
    entries: Dict[Item, RPListEntry] = {}
    for ts, itemset in database:
        for item in itemset:
            entry = entries.get(item)
            if entry is None:
                entry = RPListEntry(item)
                entries[item] = entry
            entry.observe(ts, params.per, params.min_ps)
    for entry in entries.values():
        entry.finalize(params.min_ps)
    return RPList(entries, params.min_rec)
