"""Threshold suggestion: picking ``per`` and ``minPS`` from the data.

The model needs a user-supplied period threshold.  When the analyst
has domain knowledge ("a day"), they set it; when they do not, the
data itself offers two signals this module exposes:

* the **gap spectrum** — the distribution of inter-arrival times of
  the items.  A ``per`` at a chosen quantile of that distribution makes
  the intended fraction of gaps periodic
  (:func:`suggest_per`);
* **statistically significant periods** of individual items, via the
  Ma–Hellerstein chi-square detector
  (:func:`significant_periods`), useful when the series mixes several
  rhythms (a minute-level heartbeat next to daily backups).

These are *suggestions* — the functions return numbers and the
evidence behind them; they never mine implicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._validation import check_count
from repro.baselines.period_detection import DetectedPeriod, detect_periods
from repro.core.intervals import inter_arrival_times
from repro.exceptions import EmptyDatabaseError, ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["PerSuggestion", "suggest_per", "significant_periods"]


@dataclass(frozen=True)
class PerSuggestion:
    """A suggested period threshold with its supporting evidence."""

    per: float
    quantile: float
    gap_count: int
    median_gap: float
    max_gap: float

    def __str__(self) -> str:
        return (
            f"per={self.per:g} (q{self.quantile:.2f} of {self.gap_count} "
            f"item gaps; median {self.median_gap:g}, max {self.max_gap:g})"
        )


def suggest_per(
    database: TransactionalDatabase,
    quantile: float = 0.9,
    min_support: int = 2,
) -> PerSuggestion:
    """Suggest ``per`` as a quantile of the per-item gap spectrum.

    Collects every item's inter-arrival times (items with fewer than
    ``min_support`` occurrences contribute nothing) and returns the
    requested quantile: with the default 0.9, nine in ten observed gaps
    would count as periodic occurrences.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> suggestion = suggest_per(paper_running_example(), quantile=0.75)
    >>> suggestion.per
    2
    """
    if not 0 < quantile <= 1:
        raise ParameterError(
            f"quantile must be in (0, 1], got {quantile!r}"
        )
    check_count(min_support, "min_support", minimum=2)
    gaps: List[float] = []
    for item, timestamps in database.item_timestamps().items():
        if len(timestamps) >= min_support:
            gaps.extend(inter_arrival_times(timestamps))
    if not gaps:
        raise EmptyDatabaseError(
            "no item occurs often enough to measure gaps"
        )
    gaps.sort()
    index = min(len(gaps) - 1, max(0, math.ceil(quantile * len(gaps)) - 1))
    return PerSuggestion(
        per=gaps[index],
        quantile=quantile,
        gap_count=len(gaps),
        median_gap=gaps[len(gaps) // 2],
        max_gap=gaps[-1],
    )


def significant_periods(
    database: TransactionalDatabase,
    items: Optional[Sequence[Item]] = None,
    delta: float = 0.0,
    top: int = 3,
) -> Dict[Item, Tuple[DetectedPeriod, ...]]:
    """Chi-square-significant periods per item.

    Parameters
    ----------
    database:
        The database to inspect.
    items:
        Which items to analyse (default: all).
    delta:
        Tolerance handed to
        :func:`repro.baselines.period_detection.detect_periods`.
    top:
        Keep at most this many periods per item (strongest first).

    Returns
    -------
    Mapping of item to its detected periods; items with none are
    omitted.

    Examples
    --------
    >>> db = TransactionalDatabase(
    ...     [(ts, ["beat"]) for ts in range(0, 90, 3)])
    >>> periods = significant_periods(db)
    >>> [p.period for p in periods["beat"]]
    [3]
    """
    check_count(top, "top")
    index = database.item_timestamps()
    wanted = list(index) if items is None else list(items)
    result: Dict[Item, Tuple[DetectedPeriod, ...]] = {}
    for item in wanted:
        timestamps = index.get(item)
        if not timestamps:
            continue
        detected = detect_periods(timestamps, delta=delta)
        if detected:
            result[item] = tuple(detected[:top])
    return result
