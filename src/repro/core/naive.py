"""Exhaustive reference miner — ground truth for the test suite.

Recurring patterns are not anti-monotone, so the only pruning that is
*obviously* correct (requiring no proof at all) is "the pattern never
occurs".  This miner therefore enumerates every itemset that occurs in
at least one transaction, computes its point sequence by intersection
and checks Definition 9 directly.  It is exponential by construction
and refuses databases with more distinct items than ``max_items``;
its purpose is validating the clever engines on small inputs, not
production mining.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro._validation import Number
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.rp_eclat import intersect_sorted
from repro.exceptions import SearchSpaceError
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["mine_recurring_patterns_naive"]

DEFAULT_MAX_ITEMS = 16


def mine_recurring_patterns_naive(
    database: TransactionalDatabase,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int,
    max_items: int = DEFAULT_MAX_ITEMS,
    stats: Optional[MiningStats] = None,
) -> RecurringPatternSet:
    """Mine recurring patterns by brute force (for verification).

    Parameters match :class:`~repro.core.rp_growth.RPGrowth`;
    ``max_items`` caps the item universe (default 16, i.e. at most
    65535 candidate itemsets) and a larger database raises
    :class:`~repro.exceptions.SearchSpaceError`.

    Only itemsets that are a subset of at least one transaction are
    enumerated — any other itemset has an empty point sequence and
    cannot be recurring — but *no* other pruning is applied.

    When ``stats`` is given it is populated with the shared counters:
    since this miner never prunes, every enumerated itemset counts as a
    candidate pattern and gets an exact recurrence evaluation, and
    ``erec_evaluations`` stays 0.
    """
    params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
    counters = stats if stats is not None else MiningStats()
    if len(database) == 0:
        return RecurringPatternSet()
    resolved = params.resolve(len(database))

    items = sorted(database.items(), key=repr)
    if len(items) > max_items:
        raise SearchSpaceError(
            f"naive miner refuses {len(items)} items (limit {max_items}); "
            "use RPGrowth or RPEclat for real mining"
        )
    counters.candidate_items = len(items)

    with span("first_scan"):
        occurring = _occurring_itemsets(database)
        item_ts = database.item_timestamps()

    found: List[RecurringPattern] = []
    with span("mine"):
        for itemset in occurring:
            ts_lists = sorted(
                (item_ts[item] for item in itemset), key=len
            )
            timestamps = list(ts_lists[0])
            for other in ts_lists[1:]:
                timestamps = intersect_sorted(timestamps, other)
            counters.candidate_patterns += 1
            counters.recurrence_evaluations += 1
            counters.tid_list_entries += len(timestamps)
            pattern = resolved.pattern_from_timestamps(itemset, timestamps)
            if pattern is not None:
                counters.patterns_found += 1
                found.append(pattern)
    return RecurringPatternSet(found)


def _occurring_itemsets(
    database: TransactionalDatabase,
) -> Set[FrozenSet[Item]]:
    """Every non-empty itemset that is a subset of some transaction."""
    itemsets: Set[FrozenSet[Item]] = set()
    for _, transaction_items in database:
        items = sorted(transaction_items, key=repr)
        for size in range(1, len(items) + 1):
            for combo in combinations(items, size):
                itemsets.add(frozenset(combo))
    return itemsets
