"""Online monitoring of recurring behaviour over an unbounded stream.

The batch miners need the whole database; operational settings (the
paper's network-administration motivation) want to watch a live event
stream and know, *as events arrive*, which items are inside a periodic
stretch, which stretches have become interesting, and which items have
reached the recurrence threshold.

:class:`StreamingRecurrenceMonitor` maintains, per item, exactly the
state of the paper's Algorithm 1 / Algorithm 5 — the timestamp of the
last occurrence, the periodic-support of the open run, the closed
interesting intervals and the streaming ``Erec`` — in O(1) per event.
Feeding a whole database through the monitor reproduces the batch
RP-list and per-item recurrence bit-for-bit (tested), which is the
incremental-maintenance property: appending new transactions never
requires a rescan.

The monitor tracks *items*; to watch a specific itemset, register it as
a composite via :meth:`watch_pattern` — the monitor then treats a
transaction containing the whole itemset as one occurrence of the
composite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro._validation import Number, check_count, check_positive
from repro.core.model import PeriodicInterval
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["ItemState", "StreamingRecurrenceMonitor"]

IntervalCallback = Callable[[Item, PeriodicInterval], None]


@dataclass
class ItemState:
    """Streaming per-item state (the paper's idl/ps/erec trio, plus the
    closed interesting intervals)."""

    support: int = 0
    erec: int = 0
    last_ts: float = 0.0
    run_start: float = 0.0
    current_ps: int = 0
    intervals: List[PeriodicInterval] = field(default_factory=list)

    @property
    def recurrence(self) -> int:
        """Interesting intervals closed so far (open run excluded)."""
        return len(self.intervals)


class StreamingRecurrenceMonitor:
    """Watch an event stream for recurring items and itemsets.

    Parameters
    ----------
    per, min_ps, min_rec:
        Model thresholds; ``min_ps`` must be an absolute count here (a
        stream has no fixed size to take a fraction of).
    on_interval:
        Optional callback fired whenever an interesting interval
        *closes* (the run breaks after reaching ``min_ps``).

    Examples
    --------
    >>> monitor = StreamingRecurrenceMonitor(per=2, min_ps=3, min_rec=2)
    >>> for ts in [1, 3, 4]:
    ...     monitor.observe(ts, ["a"])
    >>> monitor.observe(10, ["a"])   # run breaks: [1, 4] closes
    >>> monitor.recurrence("a")
    1
    """

    def __init__(
        self,
        per: Number,
        min_ps: int,
        min_rec: int = 1,
        on_interval: Optional[IntervalCallback] = None,
    ):
        check_positive(per, "per")
        check_count(min_ps, "min_ps")
        check_count(min_rec, "min_rec")
        self.per = per
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.on_interval = on_interval
        self._states: Dict[Item, ItemState] = {}
        self._patterns: Dict[Item, FrozenSet[Item]] = {}
        self._last_ts: Optional[float] = None
        #: Shared counters (:mod:`repro.obs.counters`), mapped to the
        #: streaming setting: ``candidate_items`` = distinct tracked
        #: items/composites, ``erec_evaluations`` = run closures (each
        #: updates the streaming Erec), ``recurrence_evaluations`` =
        #: interesting intervals closed, ``patterns_found`` = items
        #: that have crossed ``min_rec``.
        self.stats = MiningStats()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def watch_pattern(self, items: Iterable[Item], label: Item) -> None:
        """Track the itemset ``items`` as the composite item ``label``.

        Must be registered before the relevant events arrive; a
        transaction containing every item of the set counts as one
        occurrence of ``label``.
        """
        itemset = frozenset(items)
        if not itemset:
            raise ValueError("a watched pattern needs at least one item")
        self._patterns[label] = itemset

    def observe(self, ts: float, items: Iterable[Item]) -> None:
        """Feed one transaction.  Timestamps must strictly increase."""
        if self._last_ts is not None and ts <= self._last_ts:
            raise ValueError(
                f"timestamps must strictly increase; got {ts!r} after "
                f"{self._last_ts!r}"
            )
        self._last_ts = ts
        itemset = frozenset(items)
        for item in itemset:
            self._touch(item, ts)
        for label, pattern in self._patterns.items():
            if pattern <= itemset:
                self._touch(label, ts)

    def observe_database(self, database: TransactionalDatabase) -> None:
        """Feed a whole (timestamp-ordered) database."""
        with span("stream_replay"):
            for ts, itemset in database:
                self.observe(ts, itemset)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def state(self, item: Item) -> ItemState:
        """The streaming state of ``item`` (KeyError if never seen)."""
        return self._states[item]

    def recurrence(self, item: Item, include_open_run: bool = False) -> int:
        """Closed interesting intervals of ``item`` so far.

        With ``include_open_run`` the still-open run is counted too,
        provided it has already reached ``min_ps``.
        """
        state = self._states.get(item)
        if state is None:
            return 0
        count = state.recurrence
        if include_open_run and state.current_ps >= self.min_ps:
            count += 1
        return count

    def is_recurring(self, item: Item) -> bool:
        """Has ``item`` reached ``min_rec`` interesting intervals yet?"""
        return self.recurrence(item, include_open_run=True) >= self.min_rec

    def recurring_items(self) -> List[Item]:
        """All seen items/composites currently classified recurring."""
        return sorted(
            (item for item in self._states if self.is_recurring(item)),
            key=repr,
        )

    def intervals(self, item: Item, include_open_run: bool = False) -> Tuple[
        PeriodicInterval, ...
    ]:
        """Interesting intervals of ``item``, oldest first."""
        state = self._states.get(item)
        if state is None:
            return ()
        result = list(state.intervals)
        if include_open_run and state.current_ps >= self.min_ps:
            result.append(
                PeriodicInterval(state.run_start, state.last_ts, state.current_ps)
            )
        return tuple(result)

    def erec(self, item: Item, include_open_run: bool = True) -> int:
        """Streaming estimated-maximum-recurrence of ``item``.

        With ``include_open_run`` (the default) the open run's
        contribution is included, matching line 15 of Algorithm 1.
        """
        state = self._states.get(item)
        if state is None:
            return 0
        value = state.erec
        if include_open_run:
            value += state.current_ps // self.min_ps
        return value

    def support(self, item: Item) -> int:
        """Occurrences of ``item`` seen so far (0 if never seen)."""
        state = self._states.get(item)
        return 0 if state is None else state.support

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _touch(self, item: Item, ts: float) -> None:
        state = self._states.get(item)
        if state is None:
            state = ItemState()
            self._states[item] = state
            self.stats.candidate_items += 1
        if state.support == 0:
            state.run_start = ts
            state.current_ps = 1
        elif ts - state.last_ts <= self.per:
            state.current_ps += 1
        else:
            self._close_run(item, state)
            state.run_start = ts
            state.current_ps = 1
        state.support += 1
        state.last_ts = ts

    def _close_run(self, item: Item, state: ItemState) -> None:
        state.erec += state.current_ps // self.min_ps
        self.stats.erec_evaluations += 1
        if state.current_ps >= self.min_ps:
            interval = PeriodicInterval(
                state.run_start, state.last_ts, state.current_ps
            )
            state.intervals.append(interval)
            self.stats.recurrence_evaluations += 1
            if len(state.intervals) == self.min_rec:
                self.stats.patterns_found += 1
            if self.on_interval is not None:
                self.on_interval(item, interval)
