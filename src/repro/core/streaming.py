"""Compatibility re-export of the streaming monitor.

The streaming layer grew into its own package —
:mod:`repro.streaming` — when the sharded multi-tenant registry,
calendar periods and ``repro-stream/v1`` checkpoints were added.  The
single-stream monitor and its per-item state are re-exported here so
existing imports keep working:

>>> from repro.core.streaming import StreamingRecurrenceMonitor

New code should import from :mod:`repro.streaming` directly.
"""

from __future__ import annotations

from repro.streaming.monitor import ItemState, StreamingRecurrenceMonitor

__all__ = ["ItemState", "StreamingRecurrenceMonitor"]
