"""RP-growth — the paper's pattern-growth miner (Algorithms 4–5).

The miner proceeds bottom-up over a support-descending RP-tree.  For
each suffix item it assembles the pattern's point sequence from the
tail-node ts-lists, applies the ``Erec`` candidate test (Section 4.1),
reports the pattern when its true recurrence passes ``minRec``
(Algorithm 5 — implemented by
:func:`repro.core.intervals.recurrence` /
:meth:`~repro.core.model.ResolvedParameters.pattern_from_timestamps`),
builds the conditional tree restricted to items that are themselves
candidates within the conditional base, recurses, and finally pushes
the suffix item's ts-lists up to the parents (Lemma 3) so the next
header item sees complete occurrence information.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._validation import Number
from repro.core.intervals import estimated_recurrence
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
    ResolvedParameters,
)
from repro.core.rp_list import RPList, build_rp_list
from repro.core.rp_tree import RPTree, build_rp_tree
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

# ``MiningStats`` lived here historically; it is re-exported for the
# many callers that import it from this module.
__all__ = ["MiningStats", "RPGrowth", "conditional_tree_from_base"]

#: One conditional-pattern-base entry: the prefix path (root→parent
#: order) and the tail node's ts-list.
BaseEntry = Tuple[Sequence[Item], Sequence[float]]


def conditional_tree_from_base(
    base: Sequence[BaseEntry],
    order: Dict[Item, int],
    params: ResolvedParameters,
    stats: MiningStats,
) -> Optional[RPTree]:
    """Build a conditional RP-tree from a conditional pattern base.

    ``base`` is what :meth:`RPTree.prefix_paths` returns — every item
    on a prefix path is credited with the tail node's ts-list
    (Property 4).  Items whose conditional ``Erec`` falls below
    ``minRec`` are dropped (Properties 1–2) and the surviving paths are
    re-inserted in the global item ``order``.  Returns ``None`` when
    the base is empty or no item survives.

    This is a standalone function (not a method) because the parallel
    layer ships serialized bases to worker processes, which rebuild and
    mine the conditional tree without ever holding the parent tree.

    Each contributing ts-list is a concatenation of sorted runs, so
    the ``sort()`` that assembles a conditional item's point sequence
    is effectively a k-way merge executed by Timsort's C-speed run
    detection — measured faster than an explicit :func:`heapq.merge`
    (see docs/performance.md).
    """
    if not base:
        return None
    contributions: Dict[Item, List[Sequence[float]]] = {}
    for path, ts_list in base:
        for path_item in path:
            contributions.setdefault(path_item, []).append(ts_list)
    keep = set()
    for path_item, ts_lists in contributions.items():
        merged: List[float] = []
        for ts_list in ts_lists:
            merged.extend(ts_list)
        merged.sort()
        stats.erec_evaluations += 1
        if (
            estimated_recurrence(merged, params.per, params.min_ps)
            >= params.min_rec
        ):
            keep.add(path_item)
    if not keep:
        return None
    conditional = RPTree(order)
    for path, ts_list in base:
        conditional.insert(
            [path_item for path_item in path if path_item in keep],
            ts_list,
        )
    stats.conditional_trees += 1
    return conditional


class RPGrowth:
    """The RP-growth mining engine.

    Parameters
    ----------
    per, min_ps, min_rec:
        The model thresholds (Definition 10).  ``min_ps`` may be an
        absolute count or a fraction of the database size.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> miner = RPGrowth(per=2, min_ps=3, min_rec=2)
    >>> found = miner.mine(paper_running_example())
    >>> len(found)
    8
    """

    def __init__(
        self,
        per: Number,
        min_ps: Union[int, float],
        min_rec: int,
        item_order: str = "support-desc",
        max_length: Optional[int] = None,
    ):
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        self.item_order = item_order
        if max_length is not None and max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length!r}")
        self.max_length = max_length
        self.last_stats: Optional[MiningStats] = None

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine the complete set of recurring patterns in ``database``.

        An empty database yields an empty result set.  Statistics about
        the run are left in :attr:`last_stats`.
        """
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))
        with span("first_scan"):
            rp_list = build_rp_list(database, params)
        stats.candidate_items = len(rp_list.candidates)
        stats.pruned_items = len(rp_list.entries) - len(rp_list.candidates)
        if not rp_list.candidates:
            return RecurringPatternSet()
        with span("tree_build"):
            tree, _ = build_rp_tree(
                database, params, rp_list, item_order=self.item_order
            )
        stats.initial_tree_nodes = tree.node_count()
        found: List[RecurringPattern] = []
        with span("mine"):
            self._mine_tree(tree, (), params, found, stats)
        return RecurringPatternSet(found)

    # ------------------------------------------------------------------
    # Recursive pattern growth (Algorithm 4)
    # ------------------------------------------------------------------
    def _mine_tree(
        self,
        tree: RPTree,
        suffix: Tuple[Item, ...],
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        for item in tree.header_bottom_up():
            beta = suffix + (item,)
            beta_ts = tree.pattern_timestamps(item)
            stats.erec_evaluations += 1
            if (
                estimated_recurrence(beta_ts, params.per, params.min_ps)
                >= params.min_rec
            ):
                stats.candidate_patterns += 1
                stats.recurrence_evaluations += 1
                pattern = params.pattern_from_timestamps(beta, beta_ts)
                if pattern is not None:
                    stats.patterns_found += 1
                    found.append(pattern)
                if self.max_length is None or len(beta) < self.max_length:
                    conditional = self._conditional_tree(
                        tree, item, params, stats
                    )
                    if conditional is not None:
                        self._mine_tree(
                            conditional, beta, params, found, stats
                        )
            tree.remove_item(item)

    def _conditional_tree(
        self,
        tree: RPTree,
        item: Item,
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> Optional[RPTree]:
        """Build ``item``'s conditional tree, or ``None`` when empty.

        Delegates to :func:`conditional_tree_from_base`, which the
        parallel layer shares.
        """
        return conditional_tree_from_base(
            tree.prefix_paths(item), tree.order, params, stats
        )
