"""NumPy-accelerated primitives and a vectorised vertical engine.

The pure-Python implementations in :mod:`repro.core.intervals` are the
reference semantics; this module provides drop-in vectorised versions
of the model's measures, property-tested byte-identical to their pure
counterparts (``tests/core/test_accel_equivalence.py``):

* per-sequence primitives — :func:`estimated_recurrence_np`,
  :func:`recurrence_np`, :func:`interesting_intervals_np` — all built
  on the one ``np.diff`` + run-length-encoding pass of
  :func:`_run_bounds`;
* the *segmented* kernel :func:`segmented_interval_stats`, which runs
  that same pass over **many point sequences concatenated into one
  array** and returns per-segment ``Erec``/``Rec`` plus every
  interesting run.  This is the inner loop of the batched columnar
  engine (:mod:`repro.core.rp_eclat_vec`): one call replaces a whole
  python loop of per-candidate evaluations;
* sorted-array ts-list intersection :func:`intersect_arrays`
  (``np.intersect1d`` with a dense-bitmap gather for high-support
  operands — see ``docs/performance.md`` for the crossover);
* the dtype guard :func:`as_timestamp_array`, which converts raw
  timestamps to a columnar ``int64``/``float64`` array and raises
  :class:`~repro.exceptions.ParameterError` instead of silently
  wrapping when scaled timestamps approach the int64 edge.

:class:`FastRPEclat` (the ``"rp-eclat-np"`` engine) keeps point
sequences as numpy arrays but still walks candidates one python call
at a time; the batched columnar engine ``"rp-eclat-vec"`` supersedes
it on large workloads.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro._validation import Number, check_count, check_positive
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
    ResolvedParameters,
)
from repro.core.ordering import sort_candidates
from repro.exceptions import ParameterError
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "estimated_recurrence_np",
    "recurrence_np",
    "interesting_intervals_np",
    "segmented_interval_stats",
    "intersect_arrays",
    "as_timestamp_array",
    "INT64_SAFE_BOUND",
    "FastRPEclat",
]

#: Largest timestamp magnitude the int64 kernels accept.  The bound is
#: ``2**62`` — not ``2**63`` — because the kernels subtract adjacent
#: timestamps (``np.diff``), and a difference of two values in
#: ``(-2**62, 2**62)`` is guaranteed to fit in int64, whereas values
#: nearer the edge could make the *difference* wrap silently.
INT64_SAFE_BOUND = 2 ** 62

#: Exact-integer range of float64; above this, integers folded into a
#: float column (mixed int/float input) would silently lose precision.
_FLOAT64_EXACT_BOUND = 2 ** 53


def _run_bounds(
    timestamps: np.ndarray, per: Number
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(starts, ends, lengths)`` of the maximal periodic runs.

    ``timestamps`` must be a strictly increasing 1-D array; ``starts``
    and ``ends`` are inclusive indices into it.  This is the one
    vectorised pass shared by every ``*_np`` function below.
    """
    if timestamps.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    gaps = np.diff(timestamps)
    # Boundaries where a new run starts (gap > per), as indices into ts.
    breaks = np.flatnonzero(gaps > per)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [timestamps.size - 1]))
    return starts, ends, ends - starts + 1


def _run_lengths(timestamps: np.ndarray, per: Number) -> np.ndarray:
    """Lengths of the maximal periodic runs, vectorised."""
    return _run_bounds(timestamps, per)[2]


def estimated_recurrence_np(
    timestamps: np.ndarray, per: Number, min_ps: int
) -> int:
    """Vectorised ``Erec`` — equals
    :func:`repro.core.intervals.estimated_recurrence`.

    Examples
    --------
    >>> import numpy as np
    >>> estimated_recurrence_np(np.array([1, 5, 6, 7, 12, 14]), 2, 3)
    1
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    return int((_run_lengths(timestamps, per) // min_ps).sum())


def recurrence_np(timestamps: np.ndarray, per: Number, min_ps: int) -> int:
    """Vectorised ``Rec`` — equals :func:`repro.core.intervals.recurrence`."""
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    return int((_run_lengths(timestamps, per) >= min_ps).sum())


def interesting_intervals_np(
    timestamps: np.ndarray, per: Number, min_ps: int
) -> List[Tuple[float, float, int]]:
    """Vectorised interesting-interval extraction.

    Returns the same ``(start, end, ps)`` tuples as
    :func:`repro.core.intervals.interesting_intervals`.
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    if timestamps.size == 0:
        return []
    starts, ends, lengths = _run_bounds(timestamps, per)
    keep = lengths >= min_ps
    return [
        (timestamps[s].item(), timestamps[e].item(), int(length))
        for s, e, length in zip(starts[keep], ends[keep], lengths[keep])
    ]


def as_timestamp_array(values: Sequence[Number]) -> np.ndarray:
    """Convert raw timestamps to the columnar dtype, guarding int64.

    All-integer input becomes ``int64`` (exact for the whole safe
    range, unlike float64 above ``2**53``); any float in the input
    selects ``float64`` (python floats round-trip exactly).  Three
    silent-corruption cases are turned into a clear
    :class:`~repro.exceptions.ParameterError` instead:

    * an integer beyond int64 entirely (numpy would overflow or fall
      back to an object array);
    * an integer of magnitude ≥ ``2**62`` (:data:`INT64_SAFE_BOUND`) —
      it fits int64, but the kernels' ``np.diff`` could wrap.  The
      timestamp × ``per`` scaling relation of the qa suite can push
      scaled inputs here;
    * an integer above ``2**53`` mixed with floats — folding it into
      the float64 column would silently round it.

    Examples
    --------
    >>> as_timestamp_array([1, 5, 6]).dtype
    dtype('int64')
    >>> as_timestamp_array([1, 5.5]).dtype
    dtype('float64')
    """
    values = list(values)
    try:
        array = np.asarray(values)
    except OverflowError:
        raise ParameterError(
            "timestamp overflows int64; the columnar kernel stores "
            "timestamps as int64 — rescale the input (e.g. divide a "
            "nanosecond epoch down) before mining"
        ) from None
    if array.dtype == object:
        raise ParameterError(
            "timestamps do not fit a numeric int64/float64 column "
            "(values beyond the int64 range); rescale the input "
            "before mining"
        )
    if np.issubdtype(array.dtype, np.integer):
        array = array.astype(np.int64, copy=False)
        if array.size and int(np.abs(array).max()) >= INT64_SAFE_BOUND:
            raise ParameterError(
                f"timestamp magnitude >= 2**62 ({int(np.abs(array).max())}); "
                "inter-arrival differences could silently wrap int64 — "
                "rescale the input (scaled timestamps from the "
                "timestamp*per relation are the usual cause)"
            )
        return array
    if not np.issubdtype(array.dtype, np.floating):
        raise ParameterError(
            f"timestamps must be numbers, got dtype {array.dtype!r}"
        )
    array = array.astype(np.float64, copy=False)
    finite = array[np.isfinite(array)]
    if finite.size and float(np.abs(finite).max()) > _FLOAT64_EXACT_BOUND:
        # Only integers *mixed into* a float column lose precision;
        # values that were floats already are stored unchanged.
        for value in values:
            if isinstance(value, int) and abs(value) > _FLOAT64_EXACT_BOUND:
                raise ParameterError(
                    f"integer timestamp {value} mixed with float "
                    "timestamps exceeds float64's exact range (2**53) "
                    "and would be silently rounded; use a uniform "
                    "integer timebase instead"
                )
    return array


def intersect_arrays(
    left: np.ndarray,
    right: np.ndarray,
    universe: Union[int, None] = None,
) -> np.ndarray:
    """Intersection of two strictly increasing arrays, in order.

    The array counterpart of
    :func:`repro.core.rp_eclat.intersect_sorted` (property-tested
    equal).  With ``universe`` — the number of transactions the values
    index into — high-support operands take a dense-bitmap membership
    gather, which is O(|left| + |right|) with tiny constants; sparse
    operands use ``np.intersect1d(assume_unique=True)`` (sort-merge).
    The crossover (combined size ≥ universe / 8) is measured in
    ``benchmarks/bench_kernel.py`` and documented in
    ``docs/performance.md``.

    Examples
    --------
    >>> intersect_arrays(np.array([1, 3, 4, 7]), np.array([3, 7, 9]))
    array([3, 7])
    """
    left = np.asarray(left)
    right = np.asarray(right)
    if (
        universe is not None
        and np.issubdtype(left.dtype, np.integer)
        and np.issubdtype(right.dtype, np.integer)
        and left.size + right.size >= universe >> 3
    ):
        mask = np.zeros(universe, dtype=bool)
        mask[left] = True
        return right[mask[right]]
    return np.intersect1d(left, right, assume_unique=True)


def segmented_interval_stats(
    ts: np.ndarray, starts: np.ndarray, per: Number, min_ps: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment ``Erec``/``Rec`` and interesting runs, one pass.

    ``ts`` is the concatenation of many point sequences (each strictly
    increasing); segment ``i`` spans ``ts[starts[i]:starts[i + 1]]``
    (the last runs to ``ts.size``).  Empty segments — duplicate
    offsets in ``starts`` — are allowed and report zeros.  This is the
    batched generalisation of :func:`_run_bounds`: one
    ``np.diff`` + run-length-encoding sweep scores *every* candidate
    of a lattice node at once, which is what removes the per-candidate
    python loop from the columnar engine.

    Returns
    -------
    ``(erec, rec, run_seg, run_first, run_last)`` where ``erec`` and
    ``rec`` are int64 arrays of length ``len(starts)`` and the last
    three describe every *interesting* run (``ps >= min_ps``): its
    segment id and its first/last inclusive offsets into ``ts``, in
    time order within each segment.

    Examples
    --------
    Two segments of the paper's Example 5 data:

    >>> ts = np.array([1, 3, 4, 7, 11, 12, 14, 1, 5, 6, 7, 12, 14])
    >>> erec, rec, seg, first, last = segmented_interval_stats(
    ...     ts, np.array([0, 7]), per=2, min_ps=3)
    >>> erec.tolist(), rec.tolist()
    ([2, 1], [2, 1])
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    ts = np.asarray(ts)
    starts = np.asarray(starts, dtype=np.int64)
    return _segmented_interval_stats(ts, starts, per, min_ps)


def _segmented_interval_stats(
    ts: np.ndarray, starts: np.ndarray, per: Number, min_ps: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Validation-free core of :func:`segmented_interval_stats`."""
    n = ts.size
    n_seg = starts.size
    if n == 0 or n_seg == 0:
        zeros = np.zeros(n_seg, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)
        return zeros, zeros.copy(), empty, empty.copy(), empty.copy()
    # A run breaks at every segment boundary and at every gap > per.
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    np.greater(ts[1:] - ts[:-1], per, out=breaks[1:])
    inner = starts[(starts > 0) & (starts < n)]
    breaks[inner] = True
    run_first = np.flatnonzero(breaks)
    run_last = np.empty_like(run_first)
    run_last[:-1] = run_first[1:] - 1
    run_last[-1] = n - 1
    run_ps = run_last - run_first + 1
    # Attribute each run to the *last* segment starting at or before
    # it — with duplicate offsets (empty segments) the run belongs to
    # the one non-empty segment at that offset.
    run_seg = np.searchsorted(starts, run_first, side="right") - 1
    erec = np.bincount(
        run_seg, weights=run_ps // min_ps, minlength=n_seg
    ).astype(np.int64)
    good = run_ps >= min_ps
    good_seg = run_seg[good]
    rec = np.bincount(good_seg, minlength=n_seg).astype(np.int64)
    return erec, rec, good_seg, run_first[good], run_last[good]


class FastRPEclat:
    """Vectorised vertical miner — same model, numpy point sequences.

    Matches :class:`repro.core.rp_eclat.RPEclat` output exactly
    (property-tested); faster on workloads with long point sequences
    because intersection (`np.intersect1d(assume_unique=True)`) and the
    Erec bound are vectorised.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = FastRPEclat(per=2, min_ps=3, min_rec=2).mine(
    ...     paper_running_example())
    >>> len(found)
    8
    """

    def __init__(self, per: Number, min_ps: Union[int, float], min_rec: int):
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        self.last_stats: Union[MiningStats, None] = None

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine the complete set of recurring patterns in ``database``."""
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))

        with span("first_scan"):
            candidates = self._first_scan(database, params, stats)

        found: List[RecurringPattern] = []
        with span("mine"):
            for index, (item, ts) in enumerate(candidates):
                self._grow(
                    (item,), ts, candidates[index + 1:],
                    params, found, stats,
                )
        return RecurringPatternSet(found)

    def _first_scan(
        self,
        database: TransactionalDatabase,
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> List[Tuple[Item, np.ndarray]]:
        """Candidate 1-items with array ts-lists, in canonical order."""
        per, min_ps, min_rec = params.per, params.min_ps, params.min_rec
        item_ts = {
            item: np.asarray(ts)
            for item, ts in database.item_timestamps().items()
        }
        candidates: List[Tuple[Item, np.ndarray]] = []
        for item in sorted(item_ts, key=repr):
            ts = item_ts[item]
            stats.erec_evaluations += 1
            if estimated_recurrence_np(ts, per, min_ps) >= min_rec:
                candidates.append((item, ts))
                stats.tid_list_entries += int(ts.size)
            else:
                stats.pruned_items += 1
        stats.candidate_items = len(candidates)
        return sort_candidates(candidates)

    def _grow(
        self,
        prefix: Tuple[Item, ...],
        prefix_ts: np.ndarray,
        extensions: List[Tuple[Item, np.ndarray]],
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        per, min_ps, min_rec = params.per, params.min_ps, params.min_rec
        stats.candidate_patterns += 1
        stats.recurrence_evaluations += 1
        runs = interesting_intervals_np(prefix_ts, per, min_ps)
        if len(runs) >= min_rec:
            stats.patterns_found += 1
            pattern = params.pattern_from_timestamps(
                prefix, prefix_ts.tolist()
            )
            assert pattern is not None
            found.append(pattern)
        for index, (item, ts) in enumerate(extensions):
            new_ts = np.intersect1d(prefix_ts, ts, assume_unique=True)
            stats.erec_evaluations += 1
            stats.tid_list_entries += int(new_ts.size)
            if estimated_recurrence_np(new_ts, per, min_ps) >= min_rec:
                self._grow(
                    prefix + (item,), new_ts, extensions[index + 1:],
                    params, found, stats,
                )
