"""NumPy-accelerated primitives and a vectorised vertical engine.

The pure-Python implementations in :mod:`repro.core.intervals` are the
reference semantics; this module provides drop-in vectorised versions
for the two operations that dominate vertical mining on large
workloads — the ``Erec`` bound and sorted-list intersection — plus
:class:`FastRPEclat`, an RP-eclat variant that keeps point sequences as
``numpy`` arrays end to end.

Every function here is property-tested equal to its pure counterpart,
and the engine is wired into the public façade as ``"rp-eclat-np"`` so
the cross-engine equivalence suite covers it as well.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro._validation import Number, check_count, check_positive
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
    ResolvedParameters,
)
from repro.core.ordering import sort_candidates
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "estimated_recurrence_np",
    "recurrence_np",
    "interesting_intervals_np",
    "FastRPEclat",
]


def _run_bounds(
    timestamps: np.ndarray, per: Number
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(starts, ends, lengths)`` of the maximal periodic runs.

    ``timestamps`` must be a strictly increasing 1-D array; ``starts``
    and ``ends`` are inclusive indices into it.  This is the one
    vectorised pass shared by every ``*_np`` function below.
    """
    if timestamps.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    gaps = np.diff(timestamps)
    # Boundaries where a new run starts (gap > per), as indices into ts.
    breaks = np.flatnonzero(gaps > per)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [timestamps.size - 1]))
    return starts, ends, ends - starts + 1


def _run_lengths(timestamps: np.ndarray, per: Number) -> np.ndarray:
    """Lengths of the maximal periodic runs, vectorised."""
    return _run_bounds(timestamps, per)[2]


def estimated_recurrence_np(
    timestamps: np.ndarray, per: Number, min_ps: int
) -> int:
    """Vectorised ``Erec`` — equals
    :func:`repro.core.intervals.estimated_recurrence`.

    Examples
    --------
    >>> import numpy as np
    >>> estimated_recurrence_np(np.array([1, 5, 6, 7, 12, 14]), 2, 3)
    1
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    return int((_run_lengths(timestamps, per) // min_ps).sum())


def recurrence_np(timestamps: np.ndarray, per: Number, min_ps: int) -> int:
    """Vectorised ``Rec`` — equals :func:`repro.core.intervals.recurrence`."""
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    return int((_run_lengths(timestamps, per) >= min_ps).sum())


def interesting_intervals_np(
    timestamps: np.ndarray, per: Number, min_ps: int
) -> List[Tuple[float, float, int]]:
    """Vectorised interesting-interval extraction.

    Returns the same ``(start, end, ps)`` tuples as
    :func:`repro.core.intervals.interesting_intervals`.
    """
    check_positive(per, "per")
    check_count(min_ps, "min_ps")
    if timestamps.size == 0:
        return []
    starts, ends, lengths = _run_bounds(timestamps, per)
    keep = lengths >= min_ps
    return [
        (timestamps[s].item(), timestamps[e].item(), int(length))
        for s, e, length in zip(starts[keep], ends[keep], lengths[keep])
    ]


class FastRPEclat:
    """Vectorised vertical miner — same model, numpy point sequences.

    Matches :class:`repro.core.rp_eclat.RPEclat` output exactly
    (property-tested); faster on workloads with long point sequences
    because intersection (`np.intersect1d(assume_unique=True)`) and the
    Erec bound are vectorised.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = FastRPEclat(per=2, min_ps=3, min_rec=2).mine(
    ...     paper_running_example())
    >>> len(found)
    8
    """

    def __init__(self, per: Number, min_ps: Union[int, float], min_rec: int):
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        self.last_stats: Union[MiningStats, None] = None

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine the complete set of recurring patterns in ``database``."""
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))

        with span("first_scan"):
            candidates = self._first_scan(database, params, stats)

        found: List[RecurringPattern] = []
        with span("mine"):
            for index, (item, ts) in enumerate(candidates):
                self._grow(
                    (item,), ts, candidates[index + 1:],
                    params, found, stats,
                )
        return RecurringPatternSet(found)

    def _first_scan(
        self,
        database: TransactionalDatabase,
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> List[Tuple[Item, np.ndarray]]:
        """Candidate 1-items with array ts-lists, in canonical order."""
        per, min_ps, min_rec = params.per, params.min_ps, params.min_rec
        item_ts = {
            item: np.asarray(ts)
            for item, ts in database.item_timestamps().items()
        }
        candidates: List[Tuple[Item, np.ndarray]] = []
        for item in sorted(item_ts, key=repr):
            ts = item_ts[item]
            stats.erec_evaluations += 1
            if estimated_recurrence_np(ts, per, min_ps) >= min_rec:
                candidates.append((item, ts))
                stats.tid_list_entries += int(ts.size)
            else:
                stats.pruned_items += 1
        stats.candidate_items = len(candidates)
        return sort_candidates(candidates)

    def _grow(
        self,
        prefix: Tuple[Item, ...],
        prefix_ts: np.ndarray,
        extensions: List[Tuple[Item, np.ndarray]],
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        per, min_ps, min_rec = params.per, params.min_ps, params.min_rec
        stats.candidate_patterns += 1
        stats.recurrence_evaluations += 1
        runs = interesting_intervals_np(prefix_ts, per, min_ps)
        if len(runs) >= min_rec:
            stats.patterns_found += 1
            pattern = params.pattern_from_timestamps(
                prefix, prefix_ts.tolist()
            )
            assert pattern is not None
            found.append(pattern)
        for index, (item, ts) in enumerate(extensions):
            new_ts = np.intersect1d(prefix_ts, ts, assume_unique=True)
            stats.erec_evaluations += 1
            stats.tid_list_entries += int(new_ts.size)
            if estimated_recurrence_np(new_ts, per, min_ps) >= min_rec:
                self._grow(
                    prefix + (item,), new_ts, extensions[index + 1:],
                    params, found, stats,
                )
