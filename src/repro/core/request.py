"""The unified mining request object.

Nine PRs grew the façade one keyword at a time: thresholds, engine,
``jobs``, ``shards``/``max_events_in_memory``, two options objects.
Every layer that forwards a mine — the CLI, the sweep engine's cell
scheduler, the shard pipeline, and now the service daemon — had to
thread that kwarg soup through its own signature.  A
:class:`MiningRequest` is the one frozen, eagerly validated object
that replaces it: *what* to mine (an optional :class:`DatasetRef`),
*how* to mine it (engine, thresholds, jobs, sharding) and the
cross-cutting options (:class:`~repro.core.options.ResilienceOptions`,
:class:`~repro.core.options.ObservabilityOptions`).

The object has a JSON wire form (:meth:`MiningRequest.to_dict` /
:meth:`MiningRequest.from_dict`) because the service daemon
(:mod:`repro.service`) accepts it over HTTP; fields that cannot travel
(an injected monitor, open trace handles, a fault plan) are deliberately
excluded from the wire form and rejected when serialising.

The request also knows its identity in the service result cache:
:meth:`MiningRequest.cache_key` is the content address
``(dataset_digest, engine, per, min_ps, min_rec)`` and
:meth:`MiningRequest.column_key` drops ``min_rec`` — the coordinate
along which the min_rec derivation theorem (``docs/api.md``) lets a
looser cached cell answer tighter queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro._validation import Number
from repro.core.engines import get_engine
from repro.core.model import MiningParameters
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase

__all__ = ["DatasetRef", "MiningRequest", "resolve_jobs"]

#: Dataset reference kinds the wire format accepts.
_REF_KINDS = ("inline", "file", "workload")


def resolve_jobs(jobs: Optional[int], engine: str) -> int:
    """Normalise and validate a ``jobs`` count against an engine.

    ``None`` means 1; anything else must be a positive int, and counts
    above 1 require the engine's ``supports_jobs`` capability.  Shared
    by :class:`MiningRequest` and the shard pipeline so both emit the
    same pinned messages.
    """
    spec = get_engine(engine)
    resolved = 1 if jobs is None else jobs
    if isinstance(resolved, bool) or not isinstance(resolved, int) \
            or resolved < 1:
        raise ParameterError(f"jobs must be a positive int, got {jobs!r}")
    if resolved > 1 and not spec.supports_jobs:
        raise ParameterError(
            f"engine {engine!r} does not support jobs > 1; its "
            "registry entry lacks the supports_jobs capability (the "
            "exhaustive reference stays single-process by design)"
        )
    return resolved


@dataclass(frozen=True)
class DatasetRef:
    """A serialisable reference to the data a request mines.

    Three kinds cover the service's inputs:

    * ``inline`` — the transactions travel in the request itself
      (``rows`` of ``(ts, [items...])`` pairs); right for the small
      interactive case;
    * ``file`` — a transaction-format path readable by the *server*
      (the big-data case: ship the reference, not the bytes);
    * ``workload`` — a named synthetic generator from
      :mod:`repro.bench.workloads` plus its ``scale``/``seed``, so
      benchmarks and examples need no files at all.

    Examples
    --------
    >>> ref = DatasetRef.inline([(1, ["a", "b"]), (2, ["a"])])
    >>> len(ref.load())
    2
    >>> DatasetRef.from_dict(ref.to_dict()) == ref
    True
    """

    kind: str
    rows: Optional[Tuple[Tuple[float, Tuple[str, ...]], ...]] = None
    path: Optional[str] = None
    workload: Optional[str] = None
    scale: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _REF_KINDS:
            raise ParameterError(
                f"dataset ref kind must be one of {_REF_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "inline":
            if self.rows is None:
                raise ParameterError("inline dataset ref requires rows")
            canonical = []
            for row in self.rows:
                try:
                    ts, items = row
                except (TypeError, ValueError) as exc:
                    raise ParameterError(
                        f"inline row must be a (ts, items) pair, got {row!r}"
                    ) from exc
                canonical.append((ts, tuple(items)))
            object.__setattr__(self, "rows", tuple(canonical))
        elif self.kind == "file":
            if not self.path:
                raise ParameterError("file dataset ref requires a path")
        else:
            if not self.workload:
                raise ParameterError(
                    "workload dataset ref requires a workload name"
                )

    # -- constructors --------------------------------------------------
    @classmethod
    def inline(cls, rows) -> "DatasetRef":
        """Reference carrying the transactions themselves."""
        return cls(kind="inline", rows=tuple(rows))

    @classmethod
    def from_database(cls, database: TransactionalDatabase) -> "DatasetRef":
        """Inline reference to an already-built database."""
        return cls.inline(
            (t.ts, tuple(sorted(t.items, key=repr))) for t in database
        )

    @classmethod
    def file(cls, path: str) -> "DatasetRef":
        """Reference to a transaction-format file on the server."""
        return cls(kind="file", path=str(path))

    @classmethod
    def named_workload(
        cls, name: str, scale: float = 0.05, seed: int = 0
    ) -> "DatasetRef":
        """Reference to a synthetic workload generator."""
        return cls(kind="workload", workload=name, scale=scale, seed=seed)

    # -- behaviour -----------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable dataset label for telemetry records."""
        if self.kind == "inline":
            return f"inline[{len(self.rows or ())} rows]"
        if self.kind == "file":
            return str(self.path)
        return f"{self.workload}-{self.scale:g}"

    def load(self) -> TransactionalDatabase:
        """Materialise the referenced database."""
        if self.kind == "inline":
            return TransactionalDatabase(self.rows or ())
        if self.kind == "file":
            from repro.timeseries.io import load_transactional_database

            return load_transactional_database(self.path)
        from repro.bench.workloads import WORKLOADS

        try:
            factory = WORKLOADS[self.workload]
        except KeyError:
            raise ParameterError(
                f"unknown workload {self.workload!r}; known: "
                f"{sorted(WORKLOADS)}"
            ) from None
        return factory(scale=self.scale, seed=self.seed)

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        record: Dict[str, object] = {"kind": self.kind}
        if self.kind == "inline":
            record["rows"] = [
                [ts, list(items)] for ts, items in (self.rows or ())
            ]
        elif self.kind == "file":
            record["path"] = self.path
        else:
            record["workload"] = self.workload
            record["scale"] = self.scale
            record["seed"] = self.seed
        return record

    @classmethod
    def from_dict(cls, record) -> "DatasetRef":
        """Parse the wire form, re-validating every field."""
        if not isinstance(record, dict):
            raise ParameterError(
                f"dataset ref must be an object, got {type(record).__name__}"
            )
        kind = record.get("kind")
        if kind == "inline":
            rows = record.get("rows")
            if not isinstance(rows, (list, tuple)):
                raise ParameterError("inline dataset ref requires rows")
            return cls.inline(tuple((ts, tuple(items)) for ts, items in rows))
        if kind == "file":
            return cls(kind="file", path=record.get("path"))
        if kind == "workload":
            return cls(
                kind="workload",
                workload=record.get("workload"),
                scale=record.get("scale", 0.05),
                seed=record.get("seed", 0),
            )
        raise ParameterError(
            f"dataset ref kind must be one of {_REF_KINDS}, got {kind!r}"
        )


@dataclass(frozen=True)
class MiningRequest:
    """One validated, immutable description of a mine.

    Attributes
    ----------
    per, min_ps, min_rec:
        The model thresholds, validated exactly as the façade validates
        them (shared :class:`~repro.core.model.MiningParameters`
        messages, before any work starts).
    engine:
        Engine-registry name; must exist at construction time.
    jobs:
        Worker processes; ``None`` normalises to 1, ``> 1`` requires
        the engine's ``supports_jobs`` capability.
    shards, max_events_in_memory:
        Route through the time-sharded pipeline (:mod:`repro.shard`);
        mutually exclusive, both optional.
    resilience, observability:
        The two PR-5 options objects, embedded whole.
    source:
        Optional :class:`DatasetRef`.  The façade fills it in from the
        positional ``data`` argument's shape only for telemetry; the
        service requires it — a request without data cannot be served.

    Examples
    --------
    >>> request = MiningRequest(per=2, min_ps=3, min_rec=2)
    >>> request.jobs
    1
    >>> request.cache_key("d1")
    ('d1', 'rp-growth', 2, 3, 2)
    >>> MiningRequest.from_dict(request.to_dict()) == request
    True
    """

    per: Number
    min_ps: Union[int, float]
    min_rec: int = 1
    engine: str = "rp-growth"
    jobs: Optional[int] = None
    shards: Optional[int] = None
    max_events_in_memory: Optional[int] = None
    resilience: ResilienceOptions = field(default_factory=ResilienceOptions)
    observability: ObservabilityOptions = field(
        default_factory=ObservabilityOptions
    )
    source: Optional[DatasetRef] = None

    def __post_init__(self) -> None:
        MiningParameters(
            per=self.per, min_ps=self.min_ps, min_rec=self.min_rec
        )
        object.__setattr__(self, "jobs", resolve_jobs(self.jobs, self.engine))
        if self.shards is not None and self.max_events_in_memory is not None:
            raise ParameterError(
                "shards and max_events_in_memory are mutually exclusive — "
                "one names a shard count, the other a per-shard bound"
            )
        for name, value in (
            ("shards", self.shards),
            ("max_events_in_memory", self.max_events_in_memory),
        ):
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                raise ParameterError(
                    f"{name} must be a positive int, got {value!r}"
                )
        if not isinstance(self.resilience, ResilienceOptions):
            raise ParameterError(
                "resilience must be a ResilienceOptions, "
                f"got {type(self.resilience).__name__}"
            )
        if not isinstance(self.observability, ObservabilityOptions):
            raise ParameterError(
                "observability must be an ObservabilityOptions, "
                f"got {type(self.observability).__name__}"
            )
        if self.source is not None and not isinstance(
            self.source, DatasetRef
        ):
            raise ParameterError(
                f"source must be a DatasetRef, "
                f"got {type(self.source).__name__}"
            )

    # -- derived views -------------------------------------------------
    @property
    def sharded(self) -> bool:
        """True when the request routes through :mod:`repro.shard`."""
        return (
            self.shards is not None or self.max_events_in_memory is not None
        )

    def thresholds(self) -> Dict[str, object]:
        """The model-threshold triple as the telemetry ``params`` dict."""
        return {
            "per": self.per, "min_ps": self.min_ps, "min_rec": self.min_rec,
        }

    def cache_key(self, dataset_digest: str) -> Tuple:
        """The service cache's content address for this request."""
        return (
            dataset_digest, self.engine, self.per, self.min_ps, self.min_rec,
        )

    def column_key(self, dataset_digest: str) -> Tuple:
        """The cache column — everything ``min_rec`` derivation shares."""
        return (dataset_digest, self.engine, self.per, self.min_ps)

    def with_source(self, source: Optional[DatasetRef]) -> "MiningRequest":
        """A copy of this request referencing ``source``."""
        return replace(self, source=source)

    def with_thresholds(
        self,
        per: Optional[Number] = None,
        min_ps: Optional[Union[int, float]] = None,
        min_rec: Optional[int] = None,
    ) -> "MiningRequest":
        """A copy with some thresholds replaced (re-validated)."""
        return replace(
            self,
            per=self.per if per is None else per,
            min_ps=self.min_ps if min_ps is None else min_ps,
            min_rec=self.min_rec if min_rec is None else min_rec,
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON wire form (inverse of :meth:`from_dict`).

        The resilience knobs travel minus ``fault_plan`` (a local
        testing hook), and only the scalar observability fields travel
        (``collect_stats``/``track_memory``/``dataset``) — trace and
        metrics sinks belong to the process that owns the file handles.
        Raises :class:`~repro.exceptions.ParameterError` when a
        non-serialisable field is set, instead of silently dropping it.
        """
        if self.resilience.fault_plan is not None:
            raise ParameterError(
                "a fault_plan cannot be serialised; it is a local "
                "testing hook — build the request without one"
            )
        obs = self.observability
        for name, value in (
            ("monitor", obs.monitor),
            ("trace", obs.trace),
            ("metrics", obs.metrics),
        ):
            if value is not None:
                raise ParameterError(
                    f"observability.{name} cannot be serialised; sinks "
                    "and monitors belong to the serving process"
                )
        record: Dict[str, object] = {
            "per": self.per,
            "min_ps": self.min_ps,
            "min_rec": self.min_rec,
            "engine": self.engine,
            "jobs": self.jobs,
            "resilience": {
                "timeout": self.resilience.timeout,
                "max_retries": self.resilience.max_retries,
                "fallback": self.resilience.fallback,
            },
            "observability": {
                "collect_stats": obs.collect_stats,
                "track_memory": obs.track_memory,
                "dataset": obs.dataset,
            },
        }
        if self.shards is not None:
            record["shards"] = self.shards
        if self.max_events_in_memory is not None:
            record["max_events_in_memory"] = self.max_events_in_memory
        if self.source is not None:
            record["source"] = self.source.to_dict()
        return record

    @classmethod
    def from_dict(cls, record) -> "MiningRequest":
        """Parse (and fully re-validate) the wire form."""
        if not isinstance(record, dict):
            raise ParameterError(
                f"mining request must be an object, "
                f"got {type(record).__name__}"
            )
        known = {
            "per", "min_ps", "min_rec", "engine", "jobs", "shards",
            "max_events_in_memory", "resilience", "observability", "source",
        }
        unknown = sorted(set(record) - known)
        if unknown:
            raise ParameterError(
                f"mining request has unknown field(s) {unknown}"
            )
        for required in ("per", "min_ps"):
            if required not in record:
                raise ParameterError(
                    f"mining request missing required field {required!r}"
                )
        resilience_record = record.get("resilience") or {}
        if not isinstance(resilience_record, dict):
            raise ParameterError("mining request 'resilience' must be an object")
        extra = sorted(
            set(resilience_record) - {"timeout", "max_retries", "fallback"}
        )
        if extra:
            raise ParameterError(
                f"mining request resilience has unknown field(s) {extra}"
            )
        resilience = ResilienceOptions(
            timeout=resilience_record.get("timeout"),
            max_retries=resilience_record.get("max_retries", 2),
            fallback=resilience_record.get("fallback", "serial"),
        )
        obs_record = record.get("observability") or {}
        if not isinstance(obs_record, dict):
            raise ParameterError(
                "mining request 'observability' must be an object"
            )
        extra = sorted(
            set(obs_record) - {"collect_stats", "track_memory", "dataset"}
        )
        if extra:
            raise ParameterError(
                f"mining request observability has unknown field(s) {extra}"
            )
        observability = ObservabilityOptions(
            collect_stats=bool(obs_record.get("collect_stats", False)),
            track_memory=bool(obs_record.get("track_memory", False)),
            dataset=obs_record.get("dataset"),
        )
        source_record = record.get("source")
        source = (
            DatasetRef.from_dict(source_record)
            if source_record is not None else None
        )
        return cls(
            per=record["per"],
            min_ps=record["min_ps"],
            min_rec=record.get("min_rec", 1),
            engine=record.get("engine", "rp-growth"),
            jobs=record.get("jobs"),
            shards=record.get("shards"),
            max_events_in_memory=record.get("max_events_in_memory"),
            resilience=resilience,
            observability=observability,
            source=source,
        )
