"""The canonical candidate ordering shared by the vertical engines.

Both vertical miners (:class:`repro.core.rp_eclat.RPEclat` and
:class:`repro.core.accel.FastRPEclat`) explore the candidate-item
lattice depth-first from a sorted list of first-item candidates.  The
order matters twice:

* **determinism** — two engines (or two runs) must enumerate the same
  lattice so cross-engine tests can compare counters, and the parallel
  layer (:mod:`repro.parallel`) can partition the candidate list by
  index knowing every engine agrees on what lives at each index;
* **efficiency** — extending rarest-first keeps intermediate point
  sequences short, which is the classic Eclat heuristic.

The key is ``(point-sequence length, repr(item))``: primary rarest
first, ties broken by the item's ``repr`` so items of any hashable type
order deterministically.  Historically each engine spelled its own sort
key inline; they agreed by luck, not by contract.  This module is the
contract.
"""

from __future__ import annotations

from typing import List, Sequence, Sized, Tuple, TypeVar

from repro.timeseries.events import Item

__all__ = ["candidate_sort_key", "sort_candidates"]

SizedTs = TypeVar("SizedTs", bound=Sized)


def candidate_sort_key(item: Item, ts_list: Sized) -> Tuple[int, str]:
    """Sort key of one ``(item, point sequence)`` candidate pair.

    Works for any sized point-sequence representation (tuple, list,
    ``numpy`` array).

    Examples
    --------
    >>> candidate_sort_key("b", (1, 5, 9))
    (3, "'b'")
    """
    return (len(ts_list), repr(item))


def sort_candidates(
    candidates: List[Tuple[Item, SizedTs]]
) -> List[Tuple[Item, SizedTs]]:
    """Sort candidate pairs in place into the canonical order.

    Returns the same list for call-chaining convenience.

    Examples
    --------
    >>> sort_candidates([("a", (1, 2, 3)), ("b", (4, 9))])
    [('b', (4, 9)), ('a', (1, 2, 3))]
    """
    candidates.sort(key=lambda pair: candidate_sort_key(pair[0], pair[1]))
    return candidates
