"""Noise-tolerant recurring patterns (the paper's first future-work item).

Section 6 of the paper: *"In our current study, we did not considered
noisy data … For future work, we will develop methods for handling
these two scenarios."*  This module supplies that extension.

Real measurement streams drop events: a seasonal pattern that truly
repeats daily may show a single missing day, which under the strict
model splits one long periodic-interval in two (or destroys it, if the
halves fall below ``minPS``).  The **fault-tolerant** model forgives a
bounded number of slightly-too-long gaps per interval:

* a gap ≤ ``per`` extends the current interval as before;
* a gap in ``(per, fault_per]`` also extends it, but consumes one of
  the interval's ``max_faults`` *fault credits*;
* a gap > ``fault_per``, or a fault when no credit remains, closes the
  interval.

Intervals are carved greedily left-to-right, which keeps the
decomposition deterministic and makes ``max_faults = 0`` coincide
exactly with the strict model (tested).

Pruning stays sound through a relaxed bound: every fault-tolerant
interval has all internal gaps ≤ ``fault_per``, so it lies inside one
*relaxed run* (the strict decomposition at period ``fault_per``).  A
relaxed run of length ``ps`` can contain at most ``floor(ps / minPS)``
disjoint interesting intervals, and the relaxed-run ``Erec`` is
anti-monotone by the paper's own Property 2 — so
``estimated_recurrence(ts, fault_per, minPS)`` upper-bounds the
fault-tolerant recurrence of the pattern and of every superset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro._validation import Number, check_count, check_positive
from repro.core.intervals import estimated_recurrence
from repro.core.model import (
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.rp_eclat import intersect_sorted
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = [
    "FaultTolerantInterval",
    "fault_tolerant_intervals",
    "fault_tolerant_recurrence",
    "NoiseTolerantMiner",
    "mine_noise_tolerant_patterns",
]


@dataclass(frozen=True)
class FaultTolerantInterval:
    """One fault-tolerant periodic-interval.

    Like :class:`~repro.core.model.PeriodicInterval` plus the number of
    fault credits the interval consumed.
    """

    start: float
    end: float
    periodic_support: int
    faults: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )
        check_count(self.periodic_support, "periodic_support")
        check_count(self.faults, "faults", minimum=0)

    def as_periodic_interval(self) -> PeriodicInterval:
        """Drop the fault count, yielding the base-model interval."""
        return PeriodicInterval(self.start, self.end, self.periodic_support)

    def __str__(self) -> str:
        suffix = f"~{self.faults}" if self.faults else ""
        return (
            f"[{self.start:g}, {self.end:g}]:{self.periodic_support}{suffix}"
        )


def fault_tolerant_intervals(
    timestamps: Sequence[float],
    per: Number,
    fault_per: Number,
    max_faults: int,
) -> List[FaultTolerantInterval]:
    """Greedy left-to-right fault-tolerant run decomposition.

    Parameters
    ----------
    timestamps:
        Strictly increasing occurrence timestamps.
    per:
        The strict period threshold.
    fault_per:
        The forgiving threshold for faulty gaps; must be >= ``per``.
    max_faults:
        Fault credits per interval (0 reproduces the strict model).

    Examples
    --------
    One missing beat splits the strict decomposition but not the
    fault-tolerant one:

    >>> ts = [1, 2, 3, 5, 6, 7]             # the beat at 4 was dropped
    >>> fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=0)
    [FaultTolerantInterval(start=1, end=3, periodic_support=3, faults=0), \
FaultTolerantInterval(start=5, end=7, periodic_support=3, faults=0)]
    >>> fault_tolerant_intervals(ts, per=1, fault_per=2, max_faults=1)
    [FaultTolerantInterval(start=1, end=7, periodic_support=6, faults=1)]
    """
    check_positive(per, "per")
    check_positive(fault_per, "fault_per")
    check_count(max_faults, "max_faults", minimum=0)
    if fault_per < per:
        raise ParameterError(
            f"fault_per ({fault_per}) must be >= per ({per})"
        )
    iterator = iter(timestamps)
    try:
        start = previous = next(iterator)
    except StopIteration:
        return []
    intervals: List[FaultTolerantInterval] = []
    ps = 1
    faults = 0
    for current in iterator:
        if current <= previous:
            raise ValueError(
                "timestamps must be strictly increasing; "
                f"saw {previous!r} then {current!r}"
            )
        gap = current - previous
        if gap <= per:
            ps += 1
        elif gap <= fault_per and faults < max_faults:
            faults += 1
            ps += 1
        else:
            intervals.append(
                FaultTolerantInterval(start, previous, ps, faults)
            )
            start = current
            ps = 1
            faults = 0
        previous = current
    intervals.append(FaultTolerantInterval(start, previous, ps, faults))
    return intervals


def fault_tolerant_recurrence(
    timestamps: Sequence[float],
    per: Number,
    fault_per: Number,
    max_faults: int,
    min_ps: int,
) -> int:
    """Number of interesting fault-tolerant intervals."""
    check_count(min_ps, "min_ps")
    return sum(
        1
        for interval in fault_tolerant_intervals(
            timestamps, per, fault_per, max_faults
        )
        if interval.periodic_support >= min_ps
    )


class NoiseTolerantMiner:
    """Depth-first miner for fault-tolerant recurring patterns.

    Parameters
    ----------
    per, min_ps, min_rec:
        As for :class:`~repro.core.rp_growth.RPGrowth`.
    fault_per:
        Gap length up to which a faulty gap is forgiven (default
        ``2 * per``).
    max_faults:
        Fault credits per interval (default 1).

    Examples
    --------
    >>> from repro.timeseries.database import TransactionalDatabase
    >>> db = TransactionalDatabase(
    ...     [(ts, "a") for ts in [1, 2, 3, 5, 6, 7]])
    >>> strict = NoiseTolerantMiner(1, 4, 1, max_faults=0).mine(db)
    >>> len(strict)
    0
    >>> tolerant = NoiseTolerantMiner(1, 4, 1, max_faults=1).mine(db)
    >>> tolerant.pattern("a").intervals
    (PeriodicInterval(start=1, end=7, periodic_support=6),)
    """

    def __init__(
        self,
        per: Number,
        min_ps: Union[int, float],
        min_rec: int,
        fault_per: Union[Number, None] = None,
        max_faults: int = 1,
    ):
        check_positive(per, "per")
        check_count(min_rec, "min_rec")
        check_count(max_faults, "max_faults", minimum=0)
        self.per = per
        self.fault_per = 2 * per if fault_per is None else fault_per
        check_positive(self.fault_per, "fault_per")
        if self.fault_per < per:
            raise ParameterError(
                f"fault_per ({self.fault_per}) must be >= per ({per})"
            )
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.max_faults = max_faults

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine all fault-tolerant recurring patterns in ``database``."""
        if len(database) == 0:
            return RecurringPatternSet()
        from repro._validation import resolve_count_threshold

        min_ps = resolve_count_threshold(
            self.min_ps, "min_ps", len(database)
        )
        item_ts = database.item_timestamps()
        roots: List[Tuple[Item, Tuple[float, ...]]] = []
        for item in sorted(item_ts, key=repr):
            ts_list = item_ts[item]
            if self._candidate(ts_list, min_ps):
                roots.append((item, ts_list))
        roots.sort(key=lambda pair: (len(pair[1]), repr(pair[0])))

        found: List[RecurringPattern] = []
        for index, (item, ts_list) in enumerate(roots):
            self._grow(
                (item,), ts_list, roots[index + 1:], min_ps, found
            )
        return RecurringPatternSet(found)

    # ------------------------------------------------------------------
    def _candidate(self, ts_list: Sequence[float], min_ps: int) -> bool:
        # Relaxed-run Erec bound (sound for the fault-tolerant model;
        # see the module docstring).
        return (
            estimated_recurrence(ts_list, self.fault_per, min_ps)
            >= self.min_rec
        )

    def _grow(
        self,
        prefix: Tuple[Item, ...],
        prefix_ts: Sequence[float],
        extensions: List[Tuple[Item, Tuple[float, ...]]],
        min_ps: int,
        found: List[RecurringPattern],
    ) -> None:
        interesting = [
            interval
            for interval in fault_tolerant_intervals(
                prefix_ts, self.per, self.fault_per, self.max_faults
            )
            if interval.periodic_support >= min_ps
        ]
        if len(interesting) >= self.min_rec:
            found.append(
                RecurringPattern(
                    items=frozenset(prefix),
                    support=len(prefix_ts),
                    intervals=tuple(
                        interval.as_periodic_interval()
                        for interval in interesting
                    ),
                )
            )
        for index, (item, item_ts) in enumerate(extensions):
            new_ts = intersect_sorted(prefix_ts, item_ts)
            if self._candidate(new_ts, min_ps):
                self._grow(
                    prefix + (item,),
                    new_ts,
                    extensions[index + 1:],
                    min_ps,
                    found,
                )


def mine_noise_tolerant_patterns(
    database: TransactionalDatabase,
    per: Number,
    min_ps: Union[int, float],
    min_rec: int = 1,
    fault_per: Union[Number, None] = None,
    max_faults: int = 1,
) -> RecurringPatternSet:
    """Functional façade over :class:`NoiseTolerantMiner`."""
    return NoiseTolerantMiner(
        per, min_ps, min_rec, fault_per=fault_per, max_faults=max_faults
    ).mine(database)
