"""RP-tree structure and construction — Algorithms 2–3 of the paper.

An RP-tree is an FP-tree-like prefix tree over the candidate-item
projections of transactions, with two deviations (Section 4.2.1):

* nodes carry **no support counts**;
* every transaction's occurrence timestamp is stored in the *ts-list*
  of the **tail node** of its (sorted) path — interior nodes carry no
  occurrence information of their own until mining pushes ts-lists up.

The same structure is reused for prefix trees and conditional trees
during mining, so the class also exposes the push-up primitive of
Lemma 3 and conditional construction from accumulated paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.model import ResolvedParameters
from repro.core.rp_list import RPList, build_rp_list
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["RPTreeNode", "RPTree", "build_rp_tree"]


class RPTreeNode:
    """One prefix-tree node.

    ``ts_list`` is non-empty only while the node is the tail of at
    least one inserted transaction (or has received pushed-up ts-lists
    during mining).  The list is *not* kept sorted — it is a
    concatenation of sorted runs, and consumers sort on assembly,
    which Timsort's run detection resolves as a C-speed k-way merge.
    Keeping the list eagerly sorted (or merging with
    :func:`heapq.merge`) measured strictly slower; see
    docs/performance.md.  The list never contains duplicates, because
    each timestamp identifies a unique transaction and each
    transaction maps to exactly one path (Property 3).
    """

    __slots__ = ("item", "parent", "children", "ts_list")

    def __init__(self, item: Optional[Item], parent: Optional["RPTreeNode"]):
        self.item = item
        self.parent = parent
        self.children: Dict[Item, "RPTreeNode"] = {}
        self.ts_list: List[float] = []

    def path_items(self) -> List[Item]:
        """Items from this node's parent up to (excluding) the root.

        Returned tail-to-root; callers that need insertion order
        reverse the list.
        """
        items: List[Item] = []
        node = self.parent
        while node is not None and node.item is not None:
            items.append(node.item)
            node = node.parent
        return items

    def __repr__(self) -> str:
        label = "root" if self.item is None else repr(self.item)
        return f"RPTreeNode({label}, ts_list={self.ts_list!r})"


class RPTree:
    """Prefix tree plus the per-item node registry (the node links).

    Parameters
    ----------
    order:
        Global item order (item -> rank); candidate items appear in the
        tree in increasing rank from the root (support-descending order
        per the RP-list).
    """

    def __init__(self, order: Dict[Item, int]):
        self.root = RPTreeNode(None, None)
        self.order = order
        self.nodes_by_item: Dict[Item, List[RPTreeNode]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def insert(self, sorted_items: Sequence[Item], timestamps: Iterable[float]) -> None:
        """Insert one path (Algorithm 3).

        ``sorted_items`` must already be in global-order; the tail node
        receives all of ``timestamps`` in its ts-list.  Inserting an
        empty item list is a no-op.
        """
        if not sorted_items:
            return
        node = self.root
        for item in sorted_items:
            child = node.children.get(item)
            if child is None:
                child = RPTreeNode(item, node)
                node.children[item] = child
                self.nodes_by_item.setdefault(item, []).append(child)
            node = child
        node.ts_list.extend(timestamps)

    # ------------------------------------------------------------------
    # Mining support
    # ------------------------------------------------------------------
    def header_bottom_up(self) -> List[Item]:
        """Items present in the tree, least-frequent (highest rank) first.

        This is the processing order of RP-growth's outer loop.
        """
        return sorted(self.nodes_by_item, key=self.order.__getitem__, reverse=True)

    def pattern_timestamps(self, item: Item) -> List[float]:
        """Sorted union of the ts-lists of every node of ``item``.

        When the tree is a conditional tree for suffix ``α``, this is
        exactly ``TS^{ {item} ∪ α }``.  Every ts-list is a
        concatenation of sorted runs, so the ``sort()`` here is
        effectively a C-speed k-way merge (Timsort run detection).
        """
        merged: List[float] = []
        for node in self.nodes_by_item.get(item, ()):
            merged.extend(node.ts_list)
        merged.sort()
        return merged

    def prefix_paths(self, item: Item) -> List[Tuple[List[Item], List[float]]]:
        """The conditional pattern base of ``item``.

        Each entry is ``(path_items_root_to_parent, ts_list)`` for one
        node of ``item`` that carries occurrence information.  By
        Property 4, the tail node's ts-list covers every node on its
        path.
        """
        base: List[Tuple[List[Item], List[float]]] = []
        for node in self.nodes_by_item.get(item, ()):
            if not node.ts_list:
                continue
            path = node.path_items()
            path.reverse()
            base.append((path, node.ts_list))
        return base

    def remove_item(self, item: Item) -> None:
        """Push ts-lists to parents and delete every node of ``item``.

        This is line 9 of Algorithm 4, justified by Lemma 3: after the
        push-up, each parent's ts-list describes the shortened path for
        the same transactions.  The push-up concatenates; sorting is
        deferred to the consumers (:meth:`pattern_timestamps` and the
        conditional-tree build), which pay one Timsort run-merge each
        instead of a merge per push-up level.
        """
        for node in self.nodes_by_item.get(item, ()):
            parent = node.parent
            if node.ts_list:
                parent.ts_list.extend(node.ts_list)
            # An item's nodes are always leaves when it is the
            # bottom-most remaining item; guard anyway so misuse fails
            # loudly instead of silently dropping subtrees.
            if node.children:
                raise RuntimeError(
                    f"cannot remove item {item!r}: node still has children"
                )
            del parent.children[item]
        self.nodes_by_item.pop(item, None)

    # ------------------------------------------------------------------
    # Introspection (used by tests against the paper's Figures 5-6)
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Number of item nodes (the bound of Lemma 2 applies to this)."""
        return sum(len(nodes) for nodes in self.nodes_by_item.values())

    def ts_entry_count(self) -> int:
        """Total timestamps stored across all ts-lists.

        In a freshly built tree this equals the number of inserted
        transactions (one entry at each transaction's tail node) — the
        memory argument of Section 4.2.1: a design that stored
        occurrence information at *every* node on the path would pay
        the full Lemma 2 bound instead.
        """
        return sum(
            len(node.ts_list)
            for nodes in self.nodes_by_item.values()
            for node in nodes
        )

    def paths(self) -> List[Tuple[Tuple[Item, ...], Tuple[float, ...]]]:
        """All root-to-tail paths that carry a ts-list, sorted.

        Used to compare a constructed tree against the paper's drawn
        figures without depending on dict iteration order.
        """
        collected: List[Tuple[Tuple[Item, ...], Tuple[float, ...]]] = []

        def visit(node: RPTreeNode, prefix: Tuple[Item, ...]) -> None:
            if node.item is not None:
                prefix = prefix + (node.item,)
                if node.ts_list:
                    collected.append((prefix, tuple(sorted(node.ts_list))))
            for child in node.children.values():
                visit(child, prefix)

        visit(self.root, ())
        collected.sort()
        return collected


ITEM_ORDERS = ("support-desc", "support-asc", "lexicographic")


def build_rp_tree(
    database: TransactionalDatabase,
    params: ResolvedParameters,
    rp_list: Optional[RPList] = None,
    item_order: str = "support-desc",
) -> Tuple[RPTree, RPList]:
    """Algorithms 1–3: scan for candidates, then build the RP-tree.

    Returns the tree together with the RP-list used to order it (the
    caller usually needs both).  Transactions whose candidate-item
    projection is empty contribute nothing, mirroring Property 3.

    ``item_order`` selects the global item order of the prefix tree.
    The paper uses support-descending "to facilitate a high degree of
    compactness"; the alternatives exist for the ablation that
    quantifies that claim (mining output is order-invariant — tested —
    only the tree size changes).
    """
    if item_order not in ITEM_ORDERS:
        raise ValueError(
            f"item_order must be one of {ITEM_ORDERS}, got {item_order!r}"
        )
    if rp_list is None:
        rp_list = build_rp_list(database, params)
    candidates = list(rp_list.candidates)  # already support-descending
    if item_order == "support-asc":
        candidates.reverse()
    elif item_order == "lexicographic":
        candidates.sort(key=repr)
    order = {item: rank for rank, item in enumerate(candidates)}
    tree = RPTree(order)
    for ts, itemset in database:
        sorted_items = sorted(
            (item for item in itemset if item in order),
            key=order.__getitem__,
        )
        if sorted_items:
            tree.insert(sorted_items, (ts,))
    return tree, rp_list
