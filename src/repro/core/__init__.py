"""Core recurring-pattern model and the RP-growth mining algorithm.

This subpackage is the paper's primary contribution:

* :mod:`repro.core.model` — pattern/interval dataclasses and mining
  parameters (Definitions 3–11);
* :mod:`repro.core.intervals` — inter-arrival times, periodic-intervals,
  periodic-supports, recurrence and the Erec pruning bound;
* :mod:`repro.core.rp_list` — Algorithm 1 (candidate-item discovery);
* :mod:`repro.core.rp_tree` — Algorithms 2–3 (RP-tree construction);
* :mod:`repro.core.rp_growth` — Algorithms 4–5 (pattern-growth mining);
* :mod:`repro.core.rp_eclat` — an independent vertical engine with the
  same pruning, used for cross-validation and ablations;
* :mod:`repro.core.naive` — an exhaustive, pruning-free reference miner;
* :mod:`repro.core.miner` — the public façade
  :func:`~repro.core.miner.mine_recurring_patterns`.
"""

from repro.core.condensed import (
    closed_patterns,
    maximal_patterns,
    top_k_patterns,
)
from repro.core.intervals import (
    estimated_recurrence,
    inter_arrival_times,
    interesting_intervals,
    periodic_intervals,
    recurrence,
)
from repro.core.miner import mine_recurring_patterns
from repro.core.periods import (
    PerSuggestion,
    significant_periods,
    suggest_per,
)
from repro.core.noise import (
    FaultTolerantInterval,
    NoiseTolerantMiner,
    fault_tolerant_intervals,
    fault_tolerant_recurrence,
    mine_noise_tolerant_patterns,
)
from repro.core.rules import RecurringRule, SeasonalRecommender, derive_rules
from repro.core.streaming import StreamingRecurrenceMonitor
from repro.core.targeted import mine_patterns_containing
from repro.core.model import (
    MiningParameters,
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.naive import mine_recurring_patterns_naive
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import RPGrowth
from repro.core.rp_list import RPList, RPListEntry, build_rp_list

__all__ = [
    "inter_arrival_times",
    "periodic_intervals",
    "interesting_intervals",
    "recurrence",
    "estimated_recurrence",
    "PeriodicInterval",
    "RecurringPattern",
    "RecurringPatternSet",
    "MiningParameters",
    "RPList",
    "RPListEntry",
    "build_rp_list",
    "RPGrowth",
    "RPEclat",
    "mine_recurring_patterns",
    "mine_recurring_patterns_naive",
    # Extensions
    "closed_patterns",
    "maximal_patterns",
    "top_k_patterns",
    "FaultTolerantInterval",
    "fault_tolerant_intervals",
    "fault_tolerant_recurrence",
    "NoiseTolerantMiner",
    "mine_noise_tolerant_patterns",
    "RecurringRule",
    "SeasonalRecommender",
    "derive_rules",
    "StreamingRecurrenceMonitor",
    "PerSuggestion",
    "suggest_per",
    "significant_periods",
    "mine_patterns_containing",
]
