"""The engine registry — the single source of truth for engine names.

Every part of the library that needs to know which mining engines
exist (the façade, the CLI's ``--engine`` choices, the parallel
layer's capability check, the qa gate's engine × jobs matrix) reads
this registry instead of keeping its own copied tuple.  An engine is a
:class:`EngineSpec`: a name, a factory producing a miner object, and
capability flags —

``supports_jobs``
    The engine's search space can be prefix-partitioned by
    :mod:`repro.parallel`, so ``jobs > 1`` is allowed.
``exhaustive``
    The engine enumerates the full itemset lattice without pruning; it
    exists as an obviously-correct reference for small inputs, and
    consumers like the golden corpus exclude it from large cases.
``family``
    How the engine explores the search space — ``"growth"``
    (pattern-growth over an RP-tree), ``"vertical"`` (ts-list
    intersection) or ``"exhaustive"``.  The parallel layer picks its
    partitioning strategy from this flag.

A factory is called as ``factory(per, min_ps, min_rec, **options)``
and returns an object with ``mine(database)`` and ``last_stats``
(the :class:`~repro.obs.counters.StatsSource` protocol).  Factories
accept the engine-specific options they understand (``item_order``,
``pruning``, ``max_length``) and ignore the rest, so one call site can
drive any engine.

Examples
--------
>>> from repro.core.engines import ENGINES, get_engine
>>> tuple(ENGINES)
('rp-growth', 'rp-eclat', 'rp-eclat-np', 'rp-eclat-vec', 'naive')
>>> get_engine("naive").supports_jobs
False
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.exceptions import ParameterError

__all__ = [
    "ENGINES",
    "PARALLEL_ENGINES",
    "EngineSpec",
    "EngineView",
    "engine_names",
    "get_engine",
    "register_engine",
    "unregister_engine",
]


@dataclass(frozen=True)
class EngineSpec:
    """One registered mining engine: identity, factory, capabilities."""

    name: str
    factory: Callable[..., object]
    supports_jobs: bool = False
    exhaustive: bool = False
    family: str = "vertical"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ParameterError(
                f"engine name must be a non-empty string, got {self.name!r}"
            )
        if not callable(self.factory):
            raise ParameterError(
                f"engine factory must be callable, got {self.factory!r}"
            )
        if self.family not in ("growth", "vertical", "exhaustive"):
            raise ParameterError(
                f"engine family must be 'growth', 'vertical' or "
                f"'exhaustive', got {self.family!r}"
            )


#: The registry proper.  Insertion order is the presentation order
#: everywhere (CLI choices, qa matrices, documentation).
_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    factory: Callable[..., object],
    *,
    supports_jobs: bool = False,
    exhaustive: bool = False,
    family: str = "vertical",
    description: str = "",
    replace: bool = False,
) -> EngineSpec:
    """Register a mining engine under ``name``.

    ``factory(per, min_ps, min_rec, **options)`` must return an object
    with ``mine(database)`` and ``last_stats``.  Registering an
    existing name raises :class:`~repro.exceptions.ParameterError`
    unless ``replace=True``.

    Returns the created :class:`EngineSpec`.
    """
    if name in _REGISTRY and not replace:
        raise ParameterError(
            f"engine {name!r} is already registered; "
            "pass replace=True to override it"
        )
    spec = EngineSpec(
        name=name,
        factory=factory,
        supports_jobs=supports_jobs,
        exhaustive=exhaustive,
        family=family,
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (no-op for unknown names)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> EngineSpec:
    """The :class:`EngineSpec` registered as ``name``.

    Raises :class:`~repro.exceptions.ParameterError` naming the known
    engines when ``name`` is not registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        ) from None


def engine_names() -> tuple:
    """All registered engine names, in registration order."""
    return tuple(_REGISTRY)


class EngineView(Sequence):
    """A live, tuple-like view over (a filtered subset of) the registry.

    Iteration, membership, indexing and equality all behave like the
    tuple of engine names the view currently selects, so existing code
    written against hard-coded name tuples (``for e in ENGINES``,
    ``choices=ENGINES``, ``engine in PARALLEL_ENGINES``) keeps working
    — but an engine registered later appears in every view at once.
    """

    __slots__ = ("_predicate",)

    def __init__(
        self, predicate: Optional[Callable[[EngineSpec], bool]] = None
    ):
        self._predicate = predicate

    def _names(self) -> tuple:
        if self._predicate is None:
            return tuple(_REGISTRY)
        return tuple(
            name
            for name, spec in _REGISTRY.items()
            if self._predicate(spec)
        )

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EngineView):
            return self._names() == other._names()
        if isinstance(other, (tuple, list)):
            return self._names() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._names())

    def __add__(self, other):
        return self._names() + tuple(other)

    def __radd__(self, other):
        return tuple(other) + self._names()

    def __repr__(self) -> str:
        return repr(self._names())


#: Every registered engine (live view; reads like a tuple of names).
ENGINES = EngineView()

#: Engines the parallel layer can partition (``supports_jobs``).
PARALLEL_ENGINES = EngineView(lambda spec: spec.supports_jobs)


# ----------------------------------------------------------------------
# Built-in engine factories (lazy imports keep start-up cheap and
# avoid import cycles; ``**_ignored`` lets one call site pass the union
# of engine options to any factory).
# ----------------------------------------------------------------------
def _make_rp_growth(
    per,
    min_ps,
    min_rec,
    *,
    item_order: str = "support-desc",
    max_length=None,
    **_ignored,
):
    from repro.core.rp_growth import RPGrowth

    return RPGrowth(
        per, min_ps, min_rec, item_order=item_order, max_length=max_length
    )


def _make_rp_eclat(
    per,
    min_ps,
    min_rec,
    *,
    pruning: str = "erec",
    max_length=None,
    **_ignored,
):
    from repro.core.rp_eclat import RPEclat

    return RPEclat(
        per, min_ps, min_rec, pruning=pruning, max_length=max_length
    )


def _make_rp_eclat_np(per, min_ps, min_rec, **_ignored):
    from repro.core.accel import FastRPEclat

    return FastRPEclat(per, min_ps, min_rec)


def _make_rp_eclat_vec(per, min_ps, min_rec, *, max_length=None, **_ignored):
    from repro.core.rp_eclat_vec import RPEclatVec

    return RPEclatVec(per, min_ps, min_rec, max_length=max_length)


class _NaiveEngine:
    """Adapter giving the naive reference miner the engine protocol."""

    def __init__(self, per, min_ps, min_rec):
        self.per = per
        self.min_ps = min_ps
        self.min_rec = min_rec
        self.last_stats = None

    def mine(self, database):
        from repro.core.naive import mine_recurring_patterns_naive
        from repro.obs.counters import MiningStats

        stats = MiningStats()
        result = mine_recurring_patterns_naive(
            database, self.per, self.min_ps, self.min_rec, stats=stats
        )
        self.last_stats = stats
        return result


def _make_naive(per, min_ps, min_rec, **_ignored):
    return _NaiveEngine(per, min_ps, min_rec)


register_engine(
    "rp-growth",
    _make_rp_growth,
    supports_jobs=True,
    family="growth",
    description="the paper's RP-growth algorithm (default)",
)
register_engine(
    "rp-eclat",
    _make_rp_eclat,
    supports_jobs=True,
    family="vertical",
    description="vertical cross-check engine",
)
register_engine(
    "rp-eclat-np",
    _make_rp_eclat_np,
    supports_jobs=True,
    family="vertical",
    description="vectorised vertical engine",
)
register_engine(
    "rp-eclat-vec",
    _make_rp_eclat_vec,
    supports_jobs=True,
    family="vertical",
    description="batched columnar vertical engine (NumPy kernel)",
)
register_engine(
    "naive",
    _make_naive,
    exhaustive=True,
    family="exhaustive",
    description="exhaustive reference (small inputs only)",
)
