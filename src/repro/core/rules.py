"""Recurring association rules and a season-aware recommender.

The paper's final future-work item: *"extending our model to improve
the performance of an association rule-based recommender system."*
This module supplies that extension.

A **recurring association rule** ``X => Y`` is derived from a recurring
pattern ``Z = X ∪ Y``; besides the classical support and confidence it
carries ``Z``'s temporal description — the interesting
periodic-intervals in which the rule actually fires periodically.  A
recommender built on such rules can do something a classical one
cannot: rank a rule by whether *now* falls inside (or near) one of its
seasons, so gloves are recommended with jackets in November, not July.

Two confidence notions are exposed:

* ``confidence`` — classical: ``Sup(Z) / Sup(X)`` over the whole
  database;
* ``interval_confidence`` — the same ratio restricted to ``Z``'s
  interesting periodic-intervals, i.e. how reliably the antecedent
  implies the consequent *while the rule's season is on*.  This is
  typically much higher than the global confidence for seasonal rules,
  which is exactly the argument for the extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro._validation import Number, check_non_negative
from repro.core.model import (
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.exceptions import ParameterError
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["RecurringRule", "derive_rules", "SeasonalRecommender"]


@dataclass(frozen=True)
class RecurringRule:
    """One recurring association rule ``antecedent => consequent``."""

    antecedent: FrozenSet[Item]
    consequent: FrozenSet[Item]
    support: int
    confidence: float
    interval_confidence: float
    intervals: Tuple[PeriodicInterval, ...]

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise ValueError("rule sides must be non-empty")
        if self.antecedent & self.consequent:
            raise ValueError("rule sides must be disjoint")

    @property
    def recurrence(self) -> int:
        return len(self.intervals)

    def items(self) -> FrozenSet[Item]:
        """The underlying pattern: antecedent and consequent united."""
        return self.antecedent | self.consequent

    def active_at(self, ts: float, slack: Number = 0) -> bool:
        """Does ``ts`` fall inside (or within ``slack`` of) a season?"""
        check_non_negative(slack, "slack")
        return any(
            interval.start - slack <= ts <= interval.end + slack
            for interval in self.intervals
        )

    def __str__(self) -> str:
        left = " ".join(str(i) for i in sorted(self.antecedent, key=repr))
        right = " ".join(str(i) for i in sorted(self.consequent, key=repr))
        seasons = ", ".join(str(iv) for iv in self.intervals)
        return (
            f"{left} => {right} "
            f"[sup={self.support}, conf={self.confidence:.2f}, "
            f"season-conf={self.interval_confidence:.2f}, {{{seasons}}}]"
        )


def derive_rules(
    patterns: RecurringPatternSet,
    database: TransactionalDatabase,
    min_confidence: float = 0.5,
    max_consequent_size: int = 1,
) -> List[RecurringRule]:
    """Derive recurring association rules from mined patterns.

    For every recurring pattern of length >= 2 and every split into a
    non-empty antecedent and a consequent of at most
    ``max_consequent_size`` items, a rule is emitted when its classical
    confidence reaches ``min_confidence``.  Rules are returned sorted
    by (interval_confidence, confidence, support) descending.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro.core.miner import mine_recurring_patterns
    >>> db = paper_running_example()
    >>> found = mine_recurring_patterns(db, per=2, min_ps=3, min_rec=2)
    >>> rules = derive_rules(found, db, min_confidence=0.8)
    >>> print(rules[0])
    b => a [sup=7, conf=1.00, season-conf=1.00, {[1, 4]:3, [11, 14]:3}]
    """
    if not 0 < min_confidence <= 1:
        raise ParameterError(
            f"min_confidence must be in (0, 1], got {min_confidence!r}"
        )
    if max_consequent_size < 1:
        raise ParameterError(
            "max_consequent_size must be >= 1, got "
            f"{max_consequent_size!r}"
        )
    rules: List[RecurringRule] = []
    for pattern in patterns:
        if pattern.length < 2:
            continue
        items = pattern.sorted_items()
        top_size = min(max_consequent_size, pattern.length - 1)
        for size in range(1, top_size + 1):
            for consequent in combinations(items, size):
                consequent_set = frozenset(consequent)
                antecedent = pattern.items - consequent_set
                antecedent_support = database.support(antecedent)
                if antecedent_support == 0:
                    continue
                confidence = pattern.support / antecedent_support
                if confidence < min_confidence:
                    continue
                rules.append(
                    RecurringRule(
                        antecedent=antecedent,
                        consequent=consequent_set,
                        support=pattern.support,
                        confidence=confidence,
                        interval_confidence=_interval_confidence(
                            database, antecedent, pattern
                        ),
                        intervals=pattern.intervals,
                    )
                )
    rules.sort(
        key=lambda rule: (
            -rule.interval_confidence,
            -rule.confidence,
            -rule.support,
            tuple(sorted(rule.antecedent, key=repr)),
            tuple(sorted(rule.consequent, key=repr)),
        )
    )
    return rules


def _interval_confidence(
    database: TransactionalDatabase,
    antecedent: FrozenSet[Item],
    pattern: RecurringPattern,
) -> float:
    """Confidence restricted to the pattern's interesting intervals."""
    antecedent_ts = database.timestamps_of(antecedent)
    inside = sum(
        1
        for ts in antecedent_ts
        if any(iv.start <= ts <= iv.end for iv in pattern.intervals)
    )
    if inside == 0:
        return 0.0
    joint = sum(iv.periodic_support for iv in pattern.intervals)
    return joint / inside


class SeasonalRecommender:
    """Recommend items from recurring rules, ranked season-first.

    Given a basket and the current timestamp, candidate rules are those
    whose antecedent is contained in the basket and whose consequent is
    not already there; rules whose season covers the timestamp rank
    before out-of-season rules, then by interval confidence.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro.core.miner import mine_recurring_patterns
    >>> db = paper_running_example()
    >>> found = mine_recurring_patterns(db, per=2, min_ps=3, min_rec=2)
    >>> recommender = SeasonalRecommender(derive_rules(found, db))
    >>> recommender.recommend(basket=["a"], ts=3)
    ['b']
    >>> recommender.recommend(basket=["a"], ts=8)  # out of season
    []
    """

    def __init__(self, rules: Sequence[RecurringRule], slack: Number = 0):
        check_non_negative(slack, "slack")
        self.rules = list(rules)
        self.slack = slack

    def recommend(
        self,
        basket: Iterable[Item],
        ts: float,
        limit: int = 5,
        in_season_only: bool = True,
    ) -> List[Item]:
        """Ranked list of recommended items for ``basket`` at ``ts``."""
        basket_set = frozenset(basket)
        scored: List[Tuple[Tuple, Item]] = []
        seen: set = set()
        for rule in self.rules:
            if not rule.antecedent <= basket_set:
                continue
            if rule.consequent & basket_set:
                continue
            in_season = rule.active_at(ts, self.slack)
            if in_season_only and not in_season:
                continue
            for item in sorted(rule.consequent, key=repr):
                if item in seen:
                    continue
                seen.add(item)
                scored.append(
                    (
                        (
                            0 if in_season else 1,
                            -rule.interval_confidence,
                            -rule.confidence,
                        ),
                        item,
                    )
                )
        scored.sort(key=lambda entry: (entry[0], repr(entry[1])))
        return [item for _, item in scored[:limit]]
