"""Condensed representations of recurring-pattern sets.

Recurring patterns are redundant in the usual ways: whenever two items
always co-occur, every pattern containing one also appears with the
other, with identical temporal metadata.  This module provides the two
standard condensations, adapted to the recurring-pattern model:

* a **closed** recurring pattern has no proper superset with the same
  point sequence (equivalently, the same support — a superset's point
  sequence is always a subset, so equal size means equal sequence).
  Because every temporal measure of the model (periodic-intervals,
  periodic-supports, recurrence) is a function of the point sequence,
  the closed set losslessly determines the metadata of *all* recurring
  patterns;
* a **maximal** recurring pattern has no proper recurring superset.
  Maximal sets are the most compact summary but drop metadata of
  non-maximal patterns.

Note the quirk the paper's Example 10 implies: recurring patterns are
not downward-closed, so — unlike the frequent-itemset world — a subset
of a maximal recurring pattern need not be recurring at all.

Both condensations are computed from a fully mined
:class:`~repro.core.model.RecurringPatternSet`; on the pattern counts
real workloads produce this post-filter is cheap relative to mining.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from repro._validation import check_count
from repro.core.model import RecurringPattern, RecurringPatternSet
from repro.timeseries.events import Item

__all__ = ["closed_patterns", "maximal_patterns", "top_k_patterns"]


def closed_patterns(found: RecurringPatternSet) -> RecurringPatternSet:
    """The closed subset of ``found``.

    Examples
    --------
    In the running example ``a`` (support 8) is closed, while ``b``
    (support 7) is absorbed by its equal-support superset ``ab``:

    >>> from repro.datasets import paper_running_example
    >>> from repro.core.miner import mine_recurring_patterns
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> sorted("".join(sorted(p.items)) for p in closed_patterns(found))
    ['a', 'ab', 'cd', 'ef']
    """
    by_support: Dict[int, List[RecurringPattern]] = {}
    for pattern in found:
        by_support.setdefault(pattern.support, []).append(pattern)
    closed: List[RecurringPattern] = []
    for pattern in found:
        absorbed = any(
            other.items > pattern.items
            for other in by_support.get(pattern.support, ())
        )
        if not absorbed:
            closed.append(pattern)
    return RecurringPatternSet(closed)


def maximal_patterns(found: RecurringPatternSet) -> RecurringPatternSet:
    """The maximal subset of ``found``.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro.core.miner import mine_recurring_patterns
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> sorted("".join(sorted(p.items)) for p in maximal_patterns(found))
    ['ab', 'cd', 'ef']
    """
    itemsets = found.itemsets()
    # Group by length so each pattern is only compared against strictly
    # longer ones.
    by_length: Dict[int, List[FrozenSet[Item]]] = {}
    for itemset in itemsets:
        by_length.setdefault(len(itemset), []).append(itemset)
    lengths = sorted(by_length)
    maximal: List[RecurringPattern] = []
    for pattern in found:
        has_super = any(
            pattern.items < candidate
            for length in lengths
            if length > pattern.length
            for candidate in by_length[length]
        )
        if not has_super:
            maximal.append(pattern)
    return RecurringPatternSet(maximal)


def top_k_patterns(
    found: RecurringPatternSet, k: int, key: str = "recurrence"
) -> List[RecurringPattern]:
    """The ``k`` patterns maximising ``key``.

    ``key`` is one of ``"recurrence"``, ``"support"`` or ``"length"``;
    ties break deterministically on the sorted itemset.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> from repro.core.miner import mine_recurring_patterns
    >>> found = mine_recurring_patterns(
    ...     paper_running_example(), per=2, min_ps=3, min_rec=2)
    >>> [  # the highest-support pattern is the singleton a
    ...     "".join(sorted(p.items))
    ...     for p in top_k_patterns(found, 1, key="support")]
    ['a']
    """
    check_count(k, "k")
    return found.top(k, key=key)
