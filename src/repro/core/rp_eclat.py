"""A vertical recurring-pattern miner (ts-list intersection).

This engine is *not* in the paper; it is an independent implementation
of the same model used for cross-validation of RP-growth and for the
pruning ablation (DESIGN.md E-A1/E-A2).  It explores the candidate-item
lattice depth-first, carrying each pattern's point sequence explicitly
and intersecting sorted ts-lists on extension — the Eclat strategy
transplanted to time-based data.

Two pruning strategies are available:

* ``"erec"`` — the paper's estimated-maximum-recurrence bound;
* ``"support"`` — the best bound available *without* the paper's
  insight: a recurring pattern needs ``minRec`` interesting intervals of
  at least ``minPS`` occurrences each, so any pattern (and any superset)
  with ``support < minPS * minRec`` can be skipped.  Support is
  anti-monotone, so this is sound but much weaker; comparing the two is
  exactly the ablation the paper's Section 4.1 motivates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro._validation import Number
from repro.core.intervals import estimated_recurrence
from repro.core.model import (
    MiningParameters,
    RecurringPattern,
    RecurringPatternSet,
    ResolvedParameters,
)
from repro.core.ordering import sort_candidates
from repro.obs.counters import MiningStats
from repro.obs.spans import span
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.events import Item

__all__ = ["RPEclat", "intersect_sorted"]

_PRUNING_STRATEGIES = ("erec", "support")


def intersect_sorted(
    left: Sequence[float], right: Sequence[float]
) -> List[float]:
    """Intersection of two strictly increasing sequences, in order."""
    result: List[float] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return result


class RPEclat:
    """Depth-first vertical miner for recurring patterns.

    Parameters
    ----------
    per, min_ps, min_rec:
        Model thresholds, as for :class:`~repro.core.rp_growth.RPGrowth`.
    pruning:
        ``"erec"`` (default, the paper's bound) or ``"support"`` (weak
        baseline bound for the ablation).

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> found = RPEclat(per=2, min_ps=3, min_rec=2).mine(
    ...     paper_running_example())
    >>> sorted("".join(sorted(p.items)) for p in found)
    ['a', 'ab', 'b', 'cd', 'd', 'e', 'ef', 'f']
    """

    def __init__(
        self,
        per: Number,
        min_ps: Union[int, float],
        min_rec: int,
        pruning: str = "erec",
        max_length: Union[int, None] = None,
    ):
        if pruning not in _PRUNING_STRATEGIES:
            raise ValueError(
                f"pruning must be one of {_PRUNING_STRATEGIES}, got {pruning!r}"
            )
        self.params = MiningParameters(per=per, min_ps=min_ps, min_rec=min_rec)
        self.pruning = pruning
        if max_length is not None and max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length!r}")
        self.max_length = max_length
        self.last_stats: MiningStats | None = None

    def mine(self, database: TransactionalDatabase) -> RecurringPatternSet:
        """Mine the complete set of recurring patterns in ``database``."""
        stats = MiningStats()
        self.last_stats = stats
        if len(database) == 0:
            return RecurringPatternSet()
        params = self.params.resolve(len(database))

        with span("first_scan"):
            candidates = self._first_scan(database, params, stats)

        found: List[RecurringPattern] = []
        with span("mine"):
            for index, (item, ts_list) in enumerate(candidates):
                self._grow(
                    (item,), ts_list, candidates[index + 1:],
                    params, found, stats,
                )
        return RecurringPatternSet(found)

    def _first_scan(
        self,
        database: TransactionalDatabase,
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> List[Tuple[Item, Tuple[float, ...]]]:
        """Candidate 1-items with their ts-lists, in canonical order.

        The rarest-first extension order keeps intermediate ts-lists
        short; the exact key is the cross-engine contract of
        :mod:`repro.core.ordering`.
        """
        item_ts = database.item_timestamps()
        candidates: List[Tuple[Item, Tuple[float, ...]]] = []
        for item in sorted(item_ts, key=repr):
            ts_list = item_ts[item]
            stats.erec_evaluations += 1
            if self._passes_bound(ts_list, params, stats):
                candidates.append((item, ts_list))
                stats.tid_list_entries += len(ts_list)
            else:
                stats.pruned_items += 1
        stats.candidate_items = len(candidates)
        return sort_candidates(candidates)

    # ------------------------------------------------------------------
    # Depth-first growth
    # ------------------------------------------------------------------
    def _grow(
        self,
        prefix: Tuple[Item, ...],
        prefix_ts: Sequence[float],
        extensions: List[Tuple[Item, Tuple[float, ...]]],
        params: ResolvedParameters,
        found: List[RecurringPattern],
        stats: MiningStats,
    ) -> None:
        stats.candidate_patterns += 1
        stats.recurrence_evaluations += 1
        pattern = params.pattern_from_timestamps(prefix, prefix_ts)
        if pattern is not None:
            stats.patterns_found += 1
            found.append(pattern)
        if self.max_length is not None and len(prefix) >= self.max_length:
            return
        for index, (item, item_ts) in enumerate(extensions):
            new_ts = intersect_sorted(prefix_ts, item_ts)
            stats.erec_evaluations += 1
            stats.tid_list_entries += len(new_ts)
            if not self._passes_bound(new_ts, params, stats):
                continue
            self._grow(
                prefix + (item,),
                new_ts,
                extensions[index + 1:],
                params,
                found,
                stats,
            )

    def _passes_bound(
        self,
        ts_list: Sequence[float],
        params: ResolvedParameters,
        stats: MiningStats,
    ) -> bool:
        if self.pruning == "erec":
            return (
                estimated_recurrence(ts_list, params.per, params.min_ps)
                >= params.min_rec
            )
        return len(ts_list) >= params.min_ps * params.min_rec
