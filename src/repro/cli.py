"""Command-line interface: ``repro-mine`` (or ``python -m repro.cli``).

Subcommands
-----------
``mine``
    Mine recurring patterns from an event or transaction file and print
    them as a table.
``generate``
    Write one of the synthetic evaluation workloads to a file.
``stats``
    Describe the shape of a database file.
``bench``
    Run a Table 5/7-style parameter sweep on a generated workload.
``sweep``
    Mine a threshold grid through the shared-scan sweep engine and
    report the reuse counters (``repro-sweep/v1`` telemetry).
``compare``
    Run the Table 8 model comparison on a generated workload.
``qa``
    Run the conformance gate (metamorphic relations, golden corpus,
    differential sweep) and emit a ``repro-qa/v1`` report.
``stream``
    Feed events through the sharded multi-tenant streaming registry
    (from a database file or stdin JSONL) and optionally write or
    resume a ``repro-stream/v1`` checkpoint.
``trace``
    Analyze a JSON-lines trace (any mix of ``repro-run/v1``,
    ``repro-sweep/v1``, ``repro-qa/v1`` and ``repro-metrics/v1``
    records): span tree, per-phase aggregates, critical path, and —
    with ``--compare`` — an A/B delta table between two traces.

Every long-running subcommand takes ``--progress``/``--no-progress``
(default: progress is on only when stderr is a TTY) and the mining
ones take ``--metrics-out`` for periodic ``repro-metrics/v1``
snapshots.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import Callable, List, Optional, Sequence

from repro.bench.harness import (
    compare_models,
    sweep_pattern_counts,
    sweep_runtime,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import (
    clickstream_workload,
    quest_workload,
    twitter_workload,
)
from repro.core.engines import ENGINES
from repro.core.miner import mine_recurring_patterns
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.exceptions import ReproError
from repro.sweep import SweepPlan, run_sweep
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import (
    load_event_sequence,
    load_transactional_database,
    save_transactional_database,
)
from repro.timeseries.stats import describe_database

__all__ = ["main", "build_parser"]

_WORKLOADS = {
    "quest": quest_workload,
    "clickstream": clickstream_workload,
    "twitter": twitter_workload,
}

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _add_logging_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=None,
        help="enable stdlib logging at this level (stderr)",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the pruning engines "
        "(1 = serial, the default; see docs/performance.md)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline for parallel runs; an expired chunk "
        "is retried and finally re-mined serially (default: no "
        "deadline; only meaningful with --jobs > 1)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per failed parallel chunk before the serial "
        "fallback kicks in (default 2; only meaningful with "
        "--jobs > 1)",
    )


def _add_progress_flag(
    parser: argparse.ArgumentParser, metrics: bool = False
) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--progress",
        action="store_true",
        dest="progress",
        default=None,
        help="live progress/ETA lines on stderr "
        "(default: on only when stderr is a TTY)",
    )
    group.add_argument(
        "--no-progress",
        action="store_false",
        dest="progress",
        help="disable live progress even on a TTY",
    )
    if metrics:
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write periodic repro-metrics/v1 snapshots (JSON "
            "lines: counters, gauges, histograms — see "
            "docs/observability.md)",
        )


def _add_profiling_flags(
    parser: argparse.ArgumentParser, memory: bool = True
) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a phase-timing and counter table to stderr",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSON-lines trace (spans + repro-run/v1 record)",
    )
    if memory:
        parser.add_argument(
            "--track-memory",
            action="store_true",
            help="also sample peak memory per phase (tracemalloc; slower)",
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-mine`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Recurring pattern mining in time series (EDBT 2015).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine recurring patterns")
    mine.add_argument("--input", required=True, help="input file path")
    mine.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
        help="input file format (default: transactions)",
    )
    mine.add_argument("--per", type=float, required=True, help="period threshold")
    mine.add_argument(
        "--min-ps",
        type=_threshold,
        required=True,
        help="minimum periodic-support (count, or fraction like 0.02)",
    )
    mine.add_argument(
        "--min-rec", type=int, default=1, help="minimum recurrence (default 1)"
    )
    mine.add_argument(
        "--engine", choices=ENGINES, default="rp-growth", help="mining engine"
    )
    mine.add_argument(
        "--top", type=int, default=0, help="print only the N highest-support patterns"
    )
    mine.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="mine through the time-sharded pipeline with N shards "
        "(byte-identical output; see the shard subcommand for the "
        "out-of-core file variant)",
    )
    mine.add_argument(
        "--max-faults",
        type=int,
        default=0,
        help="fault credits per interval (noise-tolerant mining; default 0)",
    )
    mine.add_argument(
        "--fault-per",
        type=float,
        default=None,
        help="forgiving gap threshold for faults (default 2*per)",
    )
    condensation = mine.add_mutually_exclusive_group()
    condensation.add_argument(
        "--closed", action="store_true", help="report closed patterns only"
    )
    condensation.add_argument(
        "--maximal", action="store_true", help="report maximal patterns only"
    )
    mine.add_argument(
        "--timeline",
        action="store_true",
        help="draw each pattern's intervals on a time axis",
    )
    mine.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a markdown report of the run to PATH",
    )
    mine.add_argument(
        "--save-patterns",
        default=None,
        metavar="PATH",
        help="also write the mined pattern set (reloadable TSV) to PATH",
    )

    generate = commands.add_parser(
        "generate", help="generate a synthetic workload"
    )
    generate.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    generate.add_argument("--output", required=True, help="output file path")
    generate.add_argument(
        "--scale", type=float, default=0.1, help="fraction of paper scale"
    )
    generate.add_argument("--seed", type=int, default=0)

    stats = commands.add_parser("stats", help="describe a database file")
    stats.add_argument("--input", required=True)
    stats.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )

    bench = commands.add_parser(
        "bench", help="parameter sweep (Tables 5 and 7)"
    )
    bench.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    bench.add_argument("--scale", type=float, default=0.05)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--pers", type=float, nargs="+", default=[360, 720, 1440]
    )
    bench.add_argument(
        "--min-ps", type=_threshold, nargs="+", required=True,
        dest="min_ps_values",
    )
    bench.add_argument("--min-recs", type=int, nargs="+", default=[1, 2, 3])
    bench.add_argument(
        "--engine", choices=ENGINES, default="rp-growth"
    )
    bench.add_argument(
        "--runtime", action="store_true", help="also measure wall-clock"
    )

    sweep = commands.add_parser(
        "sweep",
        help="shared-scan threshold-grid sweep (repro-sweep/v1)",
    )
    sweep.add_argument("--input", default=None, help="input file path")
    sweep.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
        help="input file format (default: transactions)",
    )
    sweep.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), default=None,
        help="generate this synthetic workload instead of --input",
    )
    sweep.add_argument("--scale", type=float, default=0.05)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--pers", type=float, nargs="+", required=True
    )
    sweep.add_argument(
        "--min-ps", type=_threshold, nargs="+", required=True,
        dest="min_ps_values",
    )
    sweep.add_argument("--min-recs", type=int, nargs="+", default=[1])
    sweep.add_argument(
        "--engine", choices=ENGINES, default="rp-growth"
    )
    sweep.add_argument(
        "--no-derive",
        action="store_true",
        help="mine every cell instead of deriving tighter min_rec "
        "cells from their column's loosest mine (slower; identical "
        "results — useful for timing comparisons)",
    )
    sweep.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="mine each mined cell N times, keep the fastest timing",
    )

    compare = commands.add_parser(
        "compare", help="model comparison (Table 8)"
    )
    compare.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--per", type=float, default=1440)
    compare.add_argument("--min-sup", type=_threshold, required=True)
    compare.add_argument("--min-ps", type=_threshold, required=True)
    compare.add_argument("--min-rec", type=int, default=1)

    rules = commands.add_parser(
        "rules", help="derive recurring association rules"
    )
    rules.add_argument("--input", required=True)
    rules.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )
    rules.add_argument("--per", type=float, required=True)
    rules.add_argument("--min-ps", type=_threshold, required=True)
    rules.add_argument("--min-rec", type=int, default=1)
    rules.add_argument("--min-confidence", type=float, default=0.5)
    rules.add_argument("--top", type=int, default=20)

    baseline = commands.add_parser(
        "baseline", help="run one of the baseline miners"
    )
    baseline.add_argument("--input", required=True)
    baseline.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )
    baseline.add_argument(
        "--model",
        choices=(
            "frequent",
            "periodic-frequent",
            "p-pattern",
            "partial-periodic",
            "async-periodic",
        ),
        required=True,
    )
    baseline.add_argument("--per", type=float, default=1440)
    baseline.add_argument("--min-sup", type=_threshold, required=True)
    baseline.add_argument(
        "--window", type=float, default=0, help="p-pattern tolerance window"
    )
    baseline.add_argument(
        "--min-rep", type=int, default=2, help="async-periodic min repetitions"
    )
    baseline.add_argument(
        "--max-dis", type=int, default=10, help="async-periodic max disturbance"
    )
    baseline.add_argument("--top", type=int, default=20)

    qa = commands.add_parser(
        "qa", help="run the conformance gate (see docs/testing.md)"
    )
    qa.add_argument(
        "--budget",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="soft wall-clock budget; the relation matrix always "
        "completes, extra cases stop once the budget is spent "
        "(default 120)",
    )
    qa.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for the randomized suites (default: the "
        "library's pinned BASE_SEED)",
    )
    qa.add_argument(
        "--report",
        default="repro-qa-report.json",
        metavar="PATH",
        help="write the repro-qa/v1 JSON report here "
        "(default repro-qa-report.json; '-' disables)",
    )
    qa.add_argument(
        "--golden-dir",
        default=None,
        metavar="PATH",
        help="golden snapshot directory (default: tests/qa/golden)",
    )
    qa.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the golden snapshots before checking them "
        "(after an intentional model change)",
    )
    qa.add_argument(
        "--skip",
        action="append",
        choices=("relations", "golden", "differential"),
        default=None,
        metavar="SUITE",
        help="skip a suite (repeatable)",
    )
    qa.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=None,
        help="engines to exercise (default: all four)",
    )
    qa.add_argument(
        "--relation-cases",
        type=int,
        default=2,
        metavar="N",
        help="random relation cases on top of the running example "
        "(default 2)",
    )
    qa.add_argument(
        "--differential-cases",
        type=int,
        default=50,
        metavar="N",
        help="cap on differential cases (default 50; the budget "
        "usually binds first)",
    )
    qa.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without greedily shrinking them (faster)",
    )

    stream = commands.add_parser(
        "stream",
        help="feed events through the sharded streaming registry "
        "(multi-tenant recurrence, checkpoint/restore; see "
        "docs/streaming.md)",
    )
    stream.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="event source: a database file, or '-' for stdin JSONL "
        '(one {"stream": ..., "ts": ..., "items": [...]} object per '
        "line)",
    )
    stream.add_argument(
        "--format",
        choices=("transactions", "events", "jsonl"),
        default="transactions",
        help="input format (default: transactions; '-' requires jsonl)",
    )
    stream.add_argument(
        "--stream",
        default="default",
        metavar="KEY",
        help="stream key for file inputs (JSONL lines carry their own; "
        "default 'default')",
    )
    stream.add_argument(
        "--per",
        type=float,
        default=None,
        help="period threshold (omit with --calendar or --restore)",
    )
    stream.add_argument(
        "--min-ps",
        type=int,
        default=None,
        help="minimum periodic-support as an absolute count (streams "
        "are unbounded, so fractions are not accepted here)",
    )
    stream.add_argument(
        "--min-rec", type=int, default=1, help="minimum recurrence"
    )
    stream.add_argument(
        "--calendar",
        choices=("hour-of-day", "day-of-week"),
        default=None,
        help="calendar-anchored period instead of --per (minute "
        "timestamps; see docs/streaming.md)",
    )
    stream.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="hash partitions for stream keys (default 16, or the "
        "checkpoint's count with --restore)",
    )
    stream.add_argument(
        "--max-active",
        type=int,
        default=None,
        metavar="N",
        help="cap on live monitors; least-recently-observed streams "
        "are spilled and re-admitted exactly (default: unbounded)",
    )
    stream.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a repro-stream/v1 checkpoint after feeding",
    )
    stream.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="resume from a repro-stream/v1 checkpoint (thresholds "
        "come from the checkpoint)",
    )
    stream.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a final repro-metrics/v1 snapshot of the "
        "repro_stream_* gauges and counters",
    )
    stream.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="recurring items shown per stream in the summary "
        "(default 5)",
    )

    shard = commands.add_parser(
        "shard",
        help="out-of-core mining: stream a time-sorted transaction "
        "file in bounded-memory shards (byte-identical to mine)",
    )
    shard.add_argument(
        "--input",
        required=True,
        help="transaction file with non-decreasing timestamps",
    )
    shard.add_argument(
        "--per", type=float, required=True, help="period threshold"
    )
    shard.add_argument(
        "--min-ps",
        type=_threshold,
        required=True,
        help="minimum periodic-support (count, or fraction like 0.02)",
    )
    shard.add_argument(
        "--min-rec", type=int, default=1, help="minimum recurrence (default 1)"
    )
    shard.add_argument(
        "--engine", choices=ENGINES, default="rp-growth", help="mining engine"
    )
    shard.add_argument(
        "--top", type=int, default=0,
        help="print only the N highest-support patterns",
    )
    shard.add_argument(
        "--max-events",
        type=int,
        default=100_000,
        metavar="N",
        help="per-shard transaction bound — the peak-memory knob "
        "(default 100000)",
    )
    shard.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the input instead of buffered reads",
    )

    trace = commands.add_parser(
        "trace",
        help="analyze a JSON-lines trace (span tree, phase "
        "aggregates, critical path, A/B comparison)",
    )
    trace.add_argument(
        "--input",
        required=True,
        metavar="PATH",
        help="trace file: any mix of repro-run/v1, repro-sweep/v1, "
        "repro-qa/v1 and repro-metrics/v1 lines",
    )
    trace.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="second trace; print a per-phase A/B table with percent "
        "deltas instead of the single-trace report",
    )

    for sub in (
        mine, generate, stats, bench, sweep, compare, rules, baseline,
        qa, stream, shard, trace,
    ):
        _add_logging_flag(sub)
    _add_profiling_flags(mine)
    _add_profiling_flags(baseline)
    _add_profiling_flags(bench, memory=False)
    _add_profiling_flags(sweep)
    for sub in (mine, bench, sweep, shard):
        _add_progress_flag(sub, metrics=True)
    for sub in (baseline, qa):
        _add_progress_flag(sub)
    for sub in (mine, bench, sweep, baseline, shard):
        _add_jobs_flag(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
    try:
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "rules":
            return _cmd_rules(args)
        if args.command == "baseline":
            return _cmd_baseline(args)
        if args.command == "qa":
            return _cmd_qa(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "shard":
            return _cmd_shard(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_mine(args: argparse.Namespace) -> int:
    database = _load(args.input, args.format)
    profiling = args.profile or args.trace_out or args.track_memory
    telemetry = None
    if args.max_faults:
        if args.jobs > 1:
            print(
                "note: the noise-tolerant miner is serial; --jobs ignored",
                file=sys.stderr,
            )
        if args.shards:
            print(
                "note: the noise-tolerant miner does not shard; "
                "--shards ignored",
                file=sys.stderr,
            )
        from repro.core.noise import mine_noise_tolerant_patterns

        def run_noise_miner():
            return mine_noise_tolerant_patterns(
                database,
                per=args.per,
                min_ps=args.min_ps,
                min_rec=args.min_rec,
                fault_per=args.fault_per,
                max_faults=args.max_faults,
            )

        if profiling:
            from repro.obs import TraceWriter, profile_call

            found, telemetry = _monitored_call(
                args,
                "noise-tolerant",
                lambda: profile_call(
                    run_noise_miner,
                    engine="noise-tolerant",
                    params={
                        "per": args.per,
                        "min_ps": args.min_ps,
                        "min_rec": args.min_rec,
                        "max_faults": args.max_faults,
                    },
                    track_memory=args.track_memory,
                ),
                count=lambda pair: len(pair[0]),
            )
            if args.trace_out:
                with TraceWriter(args.trace_out) as writer:
                    writer.write_run(telemetry)
        else:
            found = _monitored_call(
                args, "noise-tolerant", run_noise_miner
            )
    elif profiling:
        found, telemetry = mine_recurring_patterns(
            database,
            per=args.per,
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            engine=args.engine,
            jobs=args.jobs,
            shards=args.shards,
            resilience=_resilience_options(args),
            observability=ObservabilityOptions(
                collect_stats=True,
                trace=args.trace_out,
                track_memory=args.track_memory,
                progress=args.progress,
                metrics=args.metrics_out,
            ),
        )
    else:
        found = mine_recurring_patterns(
            database,
            per=args.per,
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            engine=args.engine,
            jobs=args.jobs,
            shards=args.shards,
            resilience=_resilience_options(args),
            observability=ObservabilityOptions(
                progress=args.progress,
                metrics=args.metrics_out,
            ),
        )
    if telemetry is not None:
        telemetry.log(level=logging.DEBUG)
        if args.profile:
            print(telemetry.summary_table(), file=sys.stderr)
    if args.closed:
        from repro.core.condensed import closed_patterns

        found = closed_patterns(found)
    elif args.maximal:
        from repro.core.condensed import maximal_patterns

        found = maximal_patterns(found)
    patterns = found.top(args.top) if args.top else list(found)
    rows = [
        (
            " ".join(str(item) for item in p.sorted_items()),
            p.support,
            p.recurrence,
            ", ".join(str(interval) for interval in p.intervals),
        )
        for p in patterns
    ]
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            rows,
            title=(
                f"{len(found)} recurring patterns "
                f"(per={args.per:g}, minPS={args.min_ps}, "
                f"minRec={args.min_rec})"
            ),
        )
    )
    if args.timeline and patterns and len(database):
        from repro.viz import render_timeline

        print()
        print(render_timeline(patterns, database.start, database.end))
    if args.report:
        from repro.report import write_mining_report

        write_mining_report(
            args.report, database, found,
            per=args.per, min_ps=args.min_ps, min_rec=args.min_rec,
            engine=args.engine,
            stats=telemetry.stats if telemetry is not None else None,
        )
        print(f"report written to {args.report}")
    if args.save_patterns:
        from repro.patterns_io import save_patterns

        save_patterns(found, args.save_patterns)
        print(f"patterns written to {args.save_patterns}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.obs.progress import monitor_from_options
    from repro.shard import mine_sharded_file

    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress, metrics=args.metrics_out
        )
    )
    started = time.perf_counter()
    try:
        found, stats, faults, report = mine_sharded_file(
            args.input,
            per=args.per,
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            engine=args.engine,
            jobs=args.jobs,
            resilience=_resilience_options(args),
            monitor=monitor,
            max_transactions=args.max_events,
            use_mmap=args.mmap,
        )
        if monitor is not None:
            monitor.run_finished(
                engine=args.engine,
                stats=stats,
                seconds=time.perf_counter() - started,
                patterns_found=len(found),
            )
    finally:
        if monitor is not None:
            monitor.close()
    patterns = found.top(args.top) if args.top else list(found)
    rows = [
        (
            " ".join(str(item) for item in p.sorted_items()),
            p.support,
            p.recurrence,
            ", ".join(str(interval) for interval in p.intervals),
        )
        for p in patterns
    ]
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            rows,
            title=(
                f"{len(found)} recurring patterns "
                f"(per={args.per:g}, minPS={args.min_ps}, "
                f"minRec={args.min_rec}, out-of-core)"
            ),
        )
    )
    print(
        f"shards: {report.shard_count} "
        f"(max {args.max_events} transactions each), "
        f"candidates: {report.local_candidates} local + "
        f"{report.boundary_candidates} boundary, "
        f"stitched runs: {report.merge.stitched_runs}, "
        f"boundary patterns: {report.merge.boundary_patterns}"
    )
    if faults:
        print(f"note: {len(faults)} parallel fault(s) handled", file=sys.stderr)
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.core.rules import derive_rules

    database = _load(args.input, args.format)
    found = mine_recurring_patterns(
        database, per=args.per, min_ps=args.min_ps, min_rec=args.min_rec
    )
    rules = derive_rules(
        found, database, min_confidence=args.min_confidence
    )
    print(
        f"{len(rules)} recurring association rules "
        f"(min confidence {args.min_confidence:g})"
    )
    for rule in rules[: args.top]:
        print(f"  {rule}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.baselines import (
        mine_async_periodic_patterns,
        mine_frequent_patterns,
        mine_p_patterns,
        mine_partial_periodic_patterns,
        mine_periodic_frequent_patterns,
    )

    database = _load(args.input, args.format)
    if args.jobs > 1:
        print(
            "note: baseline miners are serial; --jobs ignored "
            "(parallel mining is for the recurring-pattern engines)",
            file=sys.stderr,
        )

    def run_baseline():
        if args.model == "frequent":
            return list(mine_frequent_patterns(database, args.min_sup))
        if args.model == "periodic-frequent":
            return list(
                mine_periodic_frequent_patterns(
                    database, args.min_sup, args.per
                )
            )
        if args.model == "p-pattern":
            mode = "tolerance" if args.window else "threshold"
            return list(
                mine_p_patterns(
                    database, args.per, args.min_sup,
                    window=args.window, mode=mode,
                )
            )
        if args.model == "partial-periodic":
            return mine_partial_periodic_patterns(
                database, int(args.per), args.min_sup
            )
        return mine_async_periodic_patterns(
            database, int(args.per), args.min_rep, args.max_dis
        )

    if args.profile or args.trace_out or args.track_memory:
        from repro.obs import TraceWriter, profile_call

        results, telemetry = _monitored_call(
            args,
            f"baseline/{args.model}",
            lambda: profile_call(
                run_baseline,
                engine=f"baseline/{args.model}",
                params={"per": args.per, "min_sup": args.min_sup},
                track_memory=args.track_memory,
            ),
            count=lambda pair: len(pair[0]),
        )
        telemetry.log(level=logging.DEBUG)
        if args.trace_out:
            with TraceWriter(args.trace_out) as writer:
                writer.write_run(telemetry)
        if args.profile:
            print(telemetry.summary_table(), file=sys.stderr)
    else:
        results = _monitored_call(
            args, f"baseline/{args.model}", run_baseline
        )
    print(f"{len(results)} {args.model} patterns")
    for pattern in results[: args.top]:
        print(f"  {pattern}")
    return 0


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.obs.report import TraceWriter, validate_qa_record
    from repro.qa import BASE_SEED, QAConfig, run_qa

    progress = args.progress
    if progress is None:
        try:
            progress = bool(sys.stderr.isatty())
        except (AttributeError, ValueError):
            progress = False
    config = QAConfig(
        budget=args.budget,
        seed=args.seed if args.seed is not None else BASE_SEED,
        golden_dir=args.golden_dir,
        engines=tuple(args.engines) if args.engines else ENGINES,
        relation_cases=args.relation_cases,
        differential_cases=args.differential_cases,
        minimize=not args.no_minimize,
        skip=tuple(args.skip or ()),
        update_golden=args.update_golden,
        on_progress=(
            (lambda text: print(text, file=sys.stderr, flush=True))
            if progress else None
        ),
    )
    report = run_qa(config)
    for path in report.golden_written:
        print(f"golden snapshot written to {path}", file=sys.stderr)
    record = report.as_record()
    validate_qa_record(record)
    if args.report and args.report != "-":
        with TraceWriter(args.report) as writer:
            writer.write_record(record)
        print(f"qa report written to {args.report}", file=sys.stderr)
    print(report.summary_table())
    return 0 if report.passed else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    save_transactional_database(database, args.output)
    print(
        f"wrote {len(database)} transactions "
        f"({len(database.items())} items) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    database = _load(args.input, args.format)
    stats = describe_database(database)
    print(format_table(["statistic", "value"], stats.as_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.progress import monitor_from_options

    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    # One monitor covers both sweeps — two independently built monitors
    # would each reopen (and truncate) the same --metrics-out file.
    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress, metrics=args.metrics_out
        )
    )
    live = (
        ObservabilityOptions(monitor=monitor)
        if monitor is not None else None
    )
    try:
        counts = sweep_pattern_counts(
            database,
            args.dataset,
            args.pers,
            args.min_ps_values,
            args.min_recs,
            engine=args.engine,
            jobs=args.jobs,
            resilience=_resilience_options(args),
            observability=live,
        )
        print(counts.as_table())
        # A trace or profile needs per-cell timings, so those imply the
        # runtime sweep.
        runtime = None
        if args.runtime or args.profile or args.trace_out:
            runtime = sweep_runtime(
                database,
                args.dataset,
                args.pers,
                args.min_ps_values,
                args.min_recs,
                engine=args.engine,
                jobs=args.jobs,
                resilience=_resilience_options(args),
                observability=live,
            )
            print()
            print(runtime.as_table())
    finally:
        if monitor is not None:
            monitor.close()
    if args.trace_out and runtime is not None:
        from repro.obs import RUN_SCHEMA, TraceWriter

        with TraceWriter(args.trace_out) as writer:
            for key in runtime.cells:
                per, min_ps, min_rec = key
                phases = runtime.phase_breakdown(per, min_ps, min_rec)
                writer.write_record({
                    "schema": RUN_SCHEMA,
                    "kind": "run",
                    "engine": args.engine,
                    "dataset": args.dataset,
                    "params": {
                        "per": per, "min_ps": min_ps, "min_rec": min_rec,
                    },
                    "patterns_found": int(counts.value(*key)),
                    "seconds": runtime.value(*key),
                    "counters": counts.stats[key].as_dict(),
                    "spans": [
                        {"name": name, "seconds": seconds}
                        for name, seconds in phases.items()
                    ],
                })
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.profile and runtime is not None:
        totals: dict = {}
        for key in runtime.cells:
            for name, seconds in runtime.phase_breakdown(*key).items():
                totals[name] = totals.get(name, 0.0) + seconds
        rows = [[name, f"{seconds:.6f}"] for name, seconds in totals.items()]
        rows.append(["total", f"{sum(totals.values()):.6f}"])
        print(
            format_table(
                ["phase", "seconds"], rows,
                title=f"{args.dataset}: phase totals over the grid",
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if (args.input is None) == (args.dataset is None):
        print(
            "error: pass exactly one of --input or --dataset",
            file=sys.stderr,
        )
        return 2
    if args.input is not None:
        database = _load(args.input, args.format)
        dataset = args.input
    else:
        database = _WORKLOADS[args.dataset](
            scale=args.scale, seed=args.seed
        )
        dataset = args.dataset
    plan = SweepPlan(
        pers=tuple(args.pers),
        min_ps_values=tuple(args.min_ps_values),
        min_recs=tuple(args.min_recs),
        engine=args.engine,
        jobs=args.jobs,
        derive_min_rec=not args.no_derive,
        repeats=args.repeats,
        resilience=_resilience_options(args),
    )
    result = run_sweep(
        database,
        plan,
        dataset=dataset,
        observability=ObservabilityOptions(
            trace=args.trace_out,
            track_memory=args.track_memory,
            progress=args.progress,
            metrics=args.metrics_out,
        ),
    )
    rows = [
        (
            f"{per:g}",
            str(min_ps),
            str(min_rec),
            len(result.pattern_set(per, min_ps, min_rec)),
            "derived" if result.derived_from[(per, min_ps, min_rec)]
            else "mined",
            f"{result.seconds_by_cell[(per, min_ps, min_rec)]:.6f}",
        )
        for per, min_ps, min_rec in plan.cells()
    ]
    print(
        format_table(
            ["per", "minPS", "minRec", "patterns", "how", "seconds"],
            rows,
            title=f"{dataset}: sweep ({plan.engine})",
        )
    )
    print(result.summary_line(), file=sys.stderr)
    if args.trace_out:
        print(f"sweep trace written to {args.trace_out}", file=sys.stderr)
    if args.profile:
        totals: dict = {"transform": result.transform_seconds}
        for key in plan.cells():
            for name, seconds in result.phase_breakdown(*key).items():
                totals[name] = totals.get(name, 0.0) + seconds
        prows = [
            [name, f"{seconds:.6f}"] for name, seconds in totals.items()
        ]
        prows.append(["total", f"{result.seconds:.6f}"])
        print(
            format_table(
                ["phase", "seconds"], prows,
                title=f"{dataset}: phase totals over the grid",
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import DataFormatError, ParameterError
    from repro.streaming import CalendarPeriod, ShardedMonitorRegistry

    metrics = None
    if args.metrics_out:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if args.restore:
        if (
            args.per is not None
            or args.min_ps is not None
            or args.calendar is not None
        ):
            raise ParameterError(
                "--restore carries its own thresholds; drop "
                "--per/--min-ps/--calendar"
            )
        registry = ShardedMonitorRegistry.restore(
            args.restore,
            shards=args.shards,
            max_active=args.max_active,
            metrics=metrics,
        )
        print(
            f"restored {len(registry.streams())} stream(s) from "
            f"{args.restore}",
            file=sys.stderr,
        )
    else:
        if args.min_ps is None:
            raise ParameterError("--min-ps is required without --restore")
        if (args.per is None) == (args.calendar is None):
            raise ParameterError(
                "exactly one of --per and --calendar is required "
                "without --restore"
            )
        kwargs: dict = {}
        if args.calendar is not None:
            kwargs["calendar"] = CalendarPeriod(args.calendar)
        else:
            kwargs["per"] = args.per
        registry = ShardedMonitorRegistry(
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            shards=16 if args.shards is None else args.shards,
            max_active=args.max_active,
            metrics=metrics,
            **kwargs,
        )

    events = 0
    if args.input is not None:
        if args.format == "jsonl":
            handle = (
                sys.stdin if args.input == "-"
                else open(args.input, "r", encoding="utf-8")
            )
            try:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        registry.observe(
                            record.get("stream", args.stream),
                            record["ts"],
                            record["items"],
                        )
                    except (ValueError, KeyError, TypeError) as error:
                        raise DataFormatError(
                            f"bad event on line {lineno}: {error}"
                        )
                    events += 1
            finally:
                if handle is not sys.stdin:
                    handle.close()
        else:
            if args.input == "-":
                raise ParameterError(
                    "reading from stdin requires --format jsonl"
                )
            database = _load(args.input, args.format)
            try:
                for ts, itemset in database:
                    registry.observe(args.stream, ts, itemset)
                    events += 1
            except ValueError as error:
                raise DataFormatError(str(error))

    keys = registry.streams()
    print(
        f"fed {events} event(s) into {len(keys)} stream(s) "
        f"across {registry.shards} shard(s) "
        f"(active {registry.active_streams}, "
        f"evicted {registry.evicted_streams})"
    )
    for key in keys:
        monitor = registry.monitor(key)
        recurring = monitor.recurring_items()
        if registry.calendar is not None:
            labels = [
                f"{registry.calendar.label(slot)}:{item}"
                for slot, item in recurring
            ]
        else:
            labels = [str(item) for item in recurring]
        shown = ", ".join(labels[: args.top]) if labels else "-"
        extra = (
            f" (+{len(labels) - args.top} more)"
            if len(labels) > args.top
            else ""
        )
        print(f"  {key}: {len(labels)} recurring: {shown}{extra}")

    if args.checkpoint:
        written = registry.checkpoint(args.checkpoint)
        print(
            f"checkpoint: {written} bytes -> {args.checkpoint}",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs.report import TraceWriter

        with TraceWriter(args.metrics_out) as writer:
            writer.write_record(metrics.snapshot())
        print(
            f"metrics snapshot written to {args.metrics_out}",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        analyze_trace,
        render_analysis,
        render_comparison,
    )

    try:
        analysis = analyze_trace(args.input)
        if args.compare:
            baseline = analyze_trace(args.compare)
            print(
                render_comparison(
                    analysis, baseline, label_a="A", label_b="B"
                )
            )
        else:
            print(render_analysis(analysis))
    except ValueError as error:
        print(f"error: malformed trace: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    result = compare_models(
        database,
        args.dataset,
        per=args.per,
        min_sup=args.min_sup,
        min_ps=args.min_ps,
        min_rec=args.min_rec,
    )
    print(result.as_table())
    return 0


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _load(path: str, file_format: str) -> TransactionalDatabase:
    if file_format == "events":
        return TransactionalDatabase.from_events(load_event_sequence(path))
    return load_transactional_database(path)


def _monitored_call(
    args: argparse.Namespace,
    label: str,
    fn: Callable[[], object],
    count: Callable[[object], int] = len,  # type: ignore[assignment]
):
    """Run ``fn`` as a single-unit monitor phase when live output is on.

    Covers the code paths that bypass ``mine_recurring_patterns``
    (the noise-tolerant miner, the baseline miners): with
    ``--progress``/``--metrics-out`` off this is a plain call, with
    them on the run still gets a progress line, the in-process
    heartbeat and a final metrics snapshot — nothing silently drops.
    """
    from repro.obs.progress import monitor_from_options

    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress,
            metrics=getattr(args, "metrics_out", None),
        )
    )
    if monitor is None:
        return fn()
    started = time.perf_counter()
    try:
        monitor.phase_started(label, units=1)
        try:
            result = fn()
            monitor.unit_done(0)
            monitor.serial_beat()
        finally:
            monitor.phase_finished()
        monitor.run_finished(
            engine=label,
            stats=None,
            seconds=time.perf_counter() - started,
            patterns_found=count(result),
        )
        return result
    finally:
        monitor.close()


def _resilience_options(args: argparse.Namespace) -> ResilienceOptions:
    """The --chunk-timeout/--max-retries flags as a ResilienceOptions."""
    return ResilienceOptions(
        timeout=args.chunk_timeout, max_retries=args.max_retries
    )


def _threshold(text: str):
    """Parse a support-like threshold: '3' -> 3, '0.02' -> 0.02."""
    value = float(text)
    if value >= 1 and value == int(value):
        return int(value)
    return value


if __name__ == "__main__":
    sys.exit(main())
