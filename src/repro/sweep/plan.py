"""The declarative description of one threshold-grid sweep.

A :class:`SweepPlan` is the cartesian grid of ``(per, min_ps,
min_rec)`` triples plus the execution knobs (engine, jobs, resilience,
reuse switches).  It validates eagerly — every cell's thresholds are
checked with the shared :mod:`repro._validation` messages before any
mining starts, exactly like the façade — and knows how the sweep
engine will iterate it: :meth:`cells` in deterministic grid order and
:meth:`columns` grouped by ``(per, min_ps)`` for the ``min_rec``
derivation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._validation import Number
from repro.core.engines import get_engine
from repro.core.model import MiningParameters
from repro.core.options import ResilienceOptions
from repro.exceptions import ParameterError

__all__ = ["GridKey", "SweepPlan"]

#: One grid cell: ``(per, min_ps, min_rec)``.
GridKey = Tuple[Number, Union[int, float], int]


@dataclass(frozen=True)
class SweepPlan:
    """A validated threshold grid plus how to execute it.

    Attributes
    ----------
    pers, min_ps_values, min_recs:
        The three grid axes; the sweep covers their cartesian product.
        Axes must be non-empty and duplicate-free (a duplicated value
        would silently double the work the sweep exists to avoid).
    engine:
        Engine-registry name mined for every cell (default
        ``"rp-growth"``).
    jobs:
        Worker processes per mined cell, exactly as on the façade
        (``None``/1 = serial; >1 requires the engine's
        ``supports_jobs`` capability).
    derive_min_rec:
        Apply the min_rec-derivation theorem (reuse layer 2): mine
        each ``(per, min_ps)`` column only at its loosest ``min_rec``
        and derive the tighter cells by recurrence filtering.  On by
        default; runtime benchmarks that need a *measured* wall-clock
        per cell switch it off.
    repeats:
        Mine each mined cell this many times and keep the fastest
        execution's timing (the result is identical across repeats).
        Only runtime sweeps care; default 1.
    resilience:
        The :class:`~repro.core.options.ResilienceOptions` forwarded
        to every parallel cell mine (per-cell timeout/retry/fallback).

    Examples
    --------
    >>> plan = SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2))
    >>> plan.cells()
    [(2, 3, 1), (2, 3, 2)]
    >>> plan.columns()
    {(2, 3): (1, 2)}
    """

    pers: Tuple[Number, ...]
    min_ps_values: Tuple[Union[int, float], ...]
    min_recs: Tuple[int, ...]
    engine: str = "rp-growth"
    jobs: Optional[int] = None
    derive_min_rec: bool = True
    repeats: int = 1
    resilience: ResilienceOptions = field(default_factory=ResilienceOptions)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pers", tuple(self.pers))
        object.__setattr__(
            self, "min_ps_values", tuple(self.min_ps_values)
        )
        object.__setattr__(self, "min_recs", tuple(self.min_recs))
        for axis_name, axis in (
            ("pers", self.pers),
            ("min_ps_values", self.min_ps_values),
            ("min_recs", self.min_recs),
        ):
            if not axis:
                raise ParameterError(
                    f"sweep axis {axis_name!r} must not be empty"
                )
            if len(set(axis)) != len(axis):
                raise ParameterError(
                    f"sweep axis {axis_name!r} contains duplicates: "
                    f"{axis!r}"
                )
        # Validate every cell's thresholds eagerly, with the façade's
        # shared messages: the most expensive way to learn about a bad
        # corner cell is after mining the 26 cells before it.
        for per in self.pers:
            for min_ps in self.min_ps_values:
                for min_rec in self.min_recs:
                    MiningParameters(
                        per=per, min_ps=min_ps, min_rec=min_rec
                    )
        spec = get_engine(self.engine)
        jobs = self.jobs
        if jobs is None:
            jobs = 1
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ParameterError(
                f"jobs must be a positive int, got {self.jobs!r}"
            )
        if jobs > 1 and not spec.supports_jobs:
            raise ParameterError(
                f"engine {self.engine!r} does not support jobs > 1; its "
                "registry entry lacks the supports_jobs capability"
            )
        object.__setattr__(self, "jobs", jobs)
        if isinstance(self.repeats, bool) or not isinstance(
            self.repeats, int
        ) or self.repeats < 1:
            raise ParameterError(
                f"repeats must be a positive int, got {self.repeats!r}"
            )
        if not isinstance(self.resilience, ResilienceOptions):
            raise ParameterError(
                "resilience must be a ResilienceOptions, "
                f"got {type(self.resilience).__name__}"
            )

    # ------------------------------------------------------------------
    # Iteration orders
    # ------------------------------------------------------------------
    def cells(self) -> List[GridKey]:
        """Every grid cell in deterministic per → min_ps → min_rec order."""
        return [
            (per, min_ps, min_rec)
            for per in self.pers
            for min_ps in self.min_ps_values
            for min_rec in self.min_recs
        ]

    def columns(self) -> Dict[Tuple[Number, Union[int, float]], Tuple[int, ...]]:
        """The grid grouped for derivation: ``(per, min_ps)`` → min_recs.

        Within a column the thresholds that shape the periodic
        intervals are fixed, so all of its cells can be served by one
        mine at the loosest (smallest) ``min_rec``.
        """
        return {
            (per, min_ps): self.min_recs
            for per in self.pers
            for min_ps in self.min_ps_values
        }

    @property
    def cell_count(self) -> int:
        """Total number of grid cells."""
        return (
            len(self.pers) * len(self.min_ps_values) * len(self.min_recs)
        )

    # ------------------------------------------------------------------
    # MiningRequest view
    # ------------------------------------------------------------------
    def cell_request(self, key: GridKey) -> "MiningRequest":
        """One cell as the unified :class:`~repro.core.request.MiningRequest`.

        The sweep engine executes mined cells through exactly this
        request (``repro.core.miner.run_request``), so a sweep cell and
        an independent façade call are the same code path — the basis
        of the byte-identity guarantee.

        Examples
        --------
        >>> plan = SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1,))
        >>> plan.cell_request((2, 3, 1)).cache_key("d1")
        ('d1', 'rp-growth', 2, 3, 1)
        """
        from repro.core.request import MiningRequest

        per, min_ps, min_rec = key
        return MiningRequest(
            per=per,
            min_ps=min_ps,
            min_rec=min_rec,
            engine=self.engine,
            jobs=self.jobs,
            resilience=self.resilience,
        )
