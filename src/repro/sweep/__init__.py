"""repro.sweep — the shared-scan threshold-sweep engine.

The paper's entire evaluation (Tables 5/7, Figures 7–9) is a grid of
``(per, minPS, minRec)`` threshold triples mined over the *same*
database.  Mining each cell independently repeats work that does not
depend on the thresholds at all; this package mines the whole grid
with three reuse layers instead:

1. **transform/scan sharing** — the EventSequence→TDB transform and
   the vertical item→ts-list map are computed once per database and
   shared by every cell;
2. **min_rec derivation** — for fixed ``(per, minPS)``, the result at
   a tighter ``minRec′`` is exactly the recurrence-filtered result of
   the loosest-``minRec`` cell (the derivation theorem; see
   :mod:`repro.sweep.engine`), so a whole ``minRec`` column costs one
   mine plus filters;
3. **cell scheduling** — cells that must be mined run through the
   existing :class:`~repro.parallel.ParallelMiner`/resilience layer.

Entry points: build a :class:`~repro.sweep.plan.SweepPlan`, call
:func:`~repro.sweep.engine.run_sweep`, read the
:class:`~repro.sweep.engine.SweepResult` (or its ``repro-sweep/v1``
record).  The CLI spelling is ``repro-mine sweep``; the bench harness
(:mod:`repro.bench.harness`) regenerates the paper's tables and
figures through this engine.
"""

from repro.sweep.engine import SweepResult, run_sweep
from repro.sweep.plan import GridKey, SweepPlan

__all__ = ["GridKey", "SweepPlan", "SweepResult", "run_sweep"]
