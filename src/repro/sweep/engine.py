"""The shared-scan sweep executor and its result object.

:func:`run_sweep` mines a :class:`~repro.sweep.plan.SweepPlan` grid
over one database with work reuse instead of independent façade calls.

**The derivation theorem (reuse layer 2).**  Fix ``per`` and
``minPS``.  A pattern's interesting periodic-intervals (Definitions
5–8) are computed from its point sequence using only ``per`` and
``minPS``; ``minRec`` enters Definition 9 solely as the final floor
``Rec(X) ≥ minRec`` on the *count* of those intervals.  Therefore, for
any ``minRec′ ≥ minRec``::

    Recurring(per, minPS, minRec′)
        = {X ∈ Recurring(per, minPS, minRec) : Rec(X) ≥ minRec′}

— and every surviving pattern carries *identical* support, recurrence
and interval metadata, because none of those depend on ``minRec``.
Each :class:`~repro.core.model.RecurringPattern` already stores its
recurrence, so deriving a tighter cell is a pure filter
(:meth:`RecurringPatternSet.filter`), no re-scan and no re-mine.  The
theorem is property-tested against the naive oracle in
``tests/sweep/test_derivation_property.py``.

**Scan sharing (reuse layer 1).**  The EventSequence→TDB transform
and the vertical item→ts-list map
(:meth:`~repro.timeseries.database.TransactionalDatabase.item_timestamps`,
threshold-independent and cached on the immutable database) are
computed once and shared by every mined cell.

**Cell scheduling (reuse layer 3).**  Cells that must actually be
mined run through the same engine dispatch as the façade — including
the :class:`~repro.parallel.ParallelMiner` resilience layer when
``plan.jobs > 1`` (per-cell timeout/retry/fallback via
``plan.resilience``).

The result is **byte-identical** to mining every cell independently
(asserted across the full engine × jobs matrix by
``tests/sweep/test_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro._validation import Number
from repro.core.miner import _as_database, run_request
from repro.core.model import RecurringPatternSet
from repro.core.options import ObservabilityOptions
from repro.obs.counters import MiningStats
from repro.obs.progress import monitor_from_options
from repro.obs.report import (
    SWEEP_SCHEMA,
    TraceWriter,
    validate_sweep_record,
)
from repro.obs.spans import Span, SpanCollector, span
from repro.sweep.plan import GridKey, SweepPlan
from repro.timeseries.database import TransactionalDatabase

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Everything one shared-scan sweep produced and measured.

    ``patterns[key]`` is byte-identical to what an independent
    ``mine_recurring_patterns`` call for that cell returns; the reuse
    counters (``cells_mined`` / ``cells_derived`` / ``scans_shared``)
    say how the sweep earned its speedup.  ``seconds_by_cell`` is the
    cost actually paid per cell — a mine for mined cells (best of
    ``plan.repeats``), a recurrence filter for derived ones.
    """

    plan: SweepPlan
    dataset: Optional[str] = None
    patterns: Dict[GridKey, RecurringPatternSet] = field(
        default_factory=dict
    )
    stats: Dict[GridKey, MiningStats] = field(default_factory=dict)
    seconds_by_cell: Dict[GridKey, float] = field(default_factory=dict)
    phases: Dict[GridKey, Dict[str, float]] = field(default_factory=dict)
    span_trees: Dict[GridKey, Tuple[Span, ...]] = field(
        default_factory=dict
    )
    derived_from: Dict[GridKey, Optional[GridKey]] = field(
        default_factory=dict
    )
    cells_mined: int = 0
    cells_derived: int = 0
    scans_shared: int = 0
    transform_seconds: float = 0.0
    seconds: float = 0.0
    memory_peak_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def cells_total(self) -> int:
        return len(self.patterns)

    def pattern_set(
        self, per: Number, min_ps: Union[int, float], min_rec: int
    ) -> RecurringPatternSet:
        """The mined (or derived) pattern set of one grid cell."""
        return self.patterns[(per, min_ps, min_rec)]

    def counts(self) -> Dict[GridKey, int]:
        """Pattern count per cell (the Table 5 / Figure 7 quantity)."""
        return {key: len(found) for key, found in self.patterns.items()}

    def phase_breakdown(
        self, per: Number, min_ps: Union[int, float], min_rec: int
    ) -> Dict[str, float]:
        """Seconds per phase of one cell (best execution)."""
        return dict(self.phases.get((per, min_ps, min_rec), {}))

    # ------------------------------------------------------------------
    # The repro-sweep/v1 record
    # ------------------------------------------------------------------
    def as_record(self) -> Dict[str, object]:
        """The ``repro-sweep/v1`` record (see docs/observability.md)."""
        cells: List[Dict[str, object]] = []
        for key in self.plan.cells():
            per, min_ps, min_rec = key
            base = self.derived_from.get(key)
            cell: Dict[str, object] = {
                "params": {
                    "per": per, "min_ps": min_ps, "min_rec": min_rec,
                },
                "patterns_found": len(self.patterns[key]),
                "seconds": self.seconds_by_cell[key],
                "derived": base is not None,
                "counters": self.stats[key].as_dict(),
                "spans": [
                    root.as_dict() for root in self.span_trees.get(key, ())
                ],
            }
            if base is not None:
                cell["derived_from"] = {
                    "per": base[0], "min_ps": base[1], "min_rec": base[2],
                }
            cells.append(cell)
        record: Dict[str, object] = {
            "schema": SWEEP_SCHEMA,
            "kind": "sweep",
            "engine": self.plan.engine,
            "grid": {
                "pers": list(self.plan.pers),
                "min_ps_values": list(self.plan.min_ps_values),
                "min_recs": list(self.plan.min_recs),
            },
            "jobs": self.plan.jobs,
            "seconds": self.seconds,
            "transform_seconds": self.transform_seconds,
            "counters": {
                "cells_total": self.cells_total,
                "cells_mined": self.cells_mined,
                "cells_derived": self.cells_derived,
                "scans_shared": self.scans_shared,
            },
            "cells": cells,
        }
        if self.dataset is not None:
            record["dataset"] = self.dataset
        if self.memory_peak_bytes is not None:
            record["memory_peak_bytes"] = self.memory_peak_bytes
        return record

    def summary_line(self) -> str:
        """One human-readable line about the reuse the sweep achieved."""
        return (
            f"{self.cells_total} cells in {self.seconds:.3f}s — "
            f"{self.cells_mined} mined, {self.cells_derived} derived "
            f"by the min_rec theorem, {self.scans_shared} shared scans"
        )


def run_sweep(
    data: Union[TransactionalDatabase, "object"],
    plan: SweepPlan,
    *,
    dataset: Optional[str] = None,
    observability: Optional[ObservabilityOptions] = None,
) -> SweepResult:
    """Mine every cell of ``plan`` over ``data`` with work reuse.

    Parameters
    ----------
    data:
        An :class:`~repro.timeseries.events.EventSequence` or a
        :class:`~repro.timeseries.database.TransactionalDatabase`.
        The transform to a database happens **once**, before any cell.
    plan:
        The validated grid and execution knobs.
    dataset:
        Label carried into the ``repro-sweep/v1`` record (falls back
        to ``observability.dataset``).
    observability:
        Optional :class:`~repro.core.options.ObservabilityOptions`:
        ``trace`` appends the validated sweep record through
        :class:`~repro.obs.report.TraceWriter`; ``track_memory``
        samples per-span peaks.  Telemetry is always collected for a
        sweep (that is its benchmark role), so ``collect_stats`` is
        implied and the return type never changes.  The live fields
        (``progress``/``metrics``/``monitor``, see
        :mod:`repro.obs.progress`) report per-cell completion and an
        ETA while the grid runs; each mined cell's chunk progress
        stacks inside the cell phase.

    Returns
    -------
    SweepResult
        Per-cell pattern sets byte-identical to independent mining,
        plus the reuse counters and the per-cell telemetry.

    Examples
    --------
    >>> from repro.datasets import paper_running_example
    >>> result = run_sweep(
    ...     paper_running_example(),
    ...     SweepPlan(pers=(2,), min_ps_values=(3,), min_recs=(1, 2)),
    ... )
    >>> len(result.pattern_set(2, 3, 2))
    8
    >>> result.cells_mined, result.cells_derived
    (1, 1)
    """
    obs = observability or ObservabilityOptions()
    dataset = dataset if dataset is not None else obs.dataset
    result = SweepResult(plan=plan, dataset=dataset)
    monitor = monitor_from_options(obs)
    owns_monitor = monitor is not None and obs.monitor is None
    started = time.perf_counter()

    # Reuse layer 1: one transform, one vertical scan, shared by every
    # cell.  item_timestamps() is threshold-independent and cached on
    # the immutable database, so warming it here means no mined cell
    # pays for it again.
    transform_collector = SpanCollector(track_memory=obs.track_memory)
    with transform_collector, span("transform"):
        database = _as_database(data)
        database.item_timestamps()
    result.transform_seconds = transform_collector.roots[0].seconds
    _fold_memory(result, transform_collector)

    # The cell-level phase wraps every per-cell mine (whose own
    # ParallelMiner chunk phase stacks on top of it); unit_done on a
    # derived cell is as real a completion as on a mined one.
    try:
        _run_cells(result, database, plan, obs, monitor, started)
    finally:
        if owns_monitor:
            monitor.close()

    if obs.trace is not None:
        record = result.as_record()
        validate_sweep_record(record)
        with TraceWriter(obs.trace) as writer:
            writer.write_record(record)
    return result


def _run_cells(
    result: SweepResult,
    database: TransactionalDatabase,
    plan: SweepPlan,
    obs: ObservabilityOptions,
    monitor,
    started: float,
) -> None:
    """Mine/derive every cell, reporting into ``monitor`` when present."""
    try:
        if monitor is not None:
            monitor.phase_started("sweep", units=len(plan.cells()))
        cell_index = 0

        def _cell_done() -> None:
            nonlocal cell_index
            if monitor is not None:
                monitor.unit_done(cell_index)
            cell_index += 1

        if plan.derive_min_rec:
            base_rec = min(plan.min_recs)
            for (per, min_ps), min_recs in plan.columns().items():
                base_key = (per, min_ps, base_rec)
                _mine_cell(
                    result, database, base_key, obs.track_memory,
                    monitor=monitor,
                )
                _cell_done()
                for min_rec in min_recs:
                    if min_rec == base_rec:
                        continue
                    _derive_cell(
                        result, base_key, (per, min_ps, min_rec)
                    )
                    _cell_done()
        else:
            for key in plan.cells():
                _mine_cell(
                    result, database, key, obs.track_memory,
                    monitor=monitor,
                )
                _cell_done()
    finally:
        if monitor is not None:
            monitor.phase_finished()

    # Every mined cell after the first reused the shared transform and
    # vertical map instead of re-scanning; derived cells never touch
    # the database at all, so they are not scan reuses — they are
    # counted by cells_derived.
    result.scans_shared = max(0, result.cells_mined - 1)
    result.seconds = time.perf_counter() - started

    if monitor is not None:
        if monitor.registry is not None:
            for name, value in (
                ("cells_mined", result.cells_mined),
                ("cells_derived", result.cells_derived),
                ("scans_shared", result.scans_shared),
            ):
                monitor.registry.counter(
                    f"repro_sweep_{name}_total",
                    {"engine": plan.engine},
                ).inc(float(value))
        monitor.run_finished(
            engine=plan.engine,
            stats=None,
            seconds=result.seconds,
            patterns_found=sum(result.counts().values()),
            note=f"sweep[{plan.engine}]: {result.summary_line()}",
        )


def _mine_cell(
    result: SweepResult,
    database: TransactionalDatabase,
    key: GridKey,
    track_memory: bool,
    monitor=None,
) -> None:
    """Mine one cell (reuse layer 3), keeping the fastest execution."""
    plan = result.plan
    request = plan.cell_request(key)
    best_root: Optional[Span] = None
    best: Optional[Tuple[RecurringPatternSet, MiningStats]] = None
    for _ in range(plan.repeats):
        collector = SpanCollector(track_memory=track_memory)
        with collector, span("cell"):
            found, stats, _faults = run_request(
                database, request, monitor=monitor,
            )
        root = collector.roots[0]
        _fold_memory(result, collector)
        if best_root is None or root.seconds < best_root.seconds:
            best_root = root
            best = (found, stats)
    assert best is not None and best_root is not None
    found, stats = best
    result.patterns[key] = found
    result.stats[key] = stats
    result.seconds_by_cell[key] = best_root.seconds
    result.phases[key] = {
        child.name: child.seconds for child in best_root.children
    }
    result.span_trees[key] = tuple(best_root.children)
    result.derived_from[key] = None
    result.cells_mined += 1


def _derive_cell(
    result: SweepResult, base_key: GridKey, key: GridKey
) -> None:
    """Fill one cell by the derivation theorem: a recurrence filter."""
    min_rec = key[2]
    started = time.perf_counter()
    derived = result.patterns[base_key].filter(min_recurrence=min_rec)
    seconds = time.perf_counter() - started
    result.patterns[key] = derived
    # The engine counters describe the one mine that served the whole
    # column; only patterns_found is specific to this cell.
    result.stats[key] = replace(
        result.stats[base_key], patterns_found=len(derived)
    )
    result.seconds_by_cell[key] = seconds
    result.phases[key] = {"derive": seconds}
    result.span_trees[key] = (
        Span(name="derive", started=0.0, seconds=seconds),
    )
    result.derived_from[key] = base_key
    result.cells_derived += 1


def _fold_memory(result: SweepResult, collector: SpanCollector) -> None:
    if collector.memory_peak_bytes is not None:
        result.memory_peak_bytes = max(
            result.memory_peak_bytes or 0, collector.memory_peak_bytes
        )
