"""The ``sweep`` subcommand: shared-scan threshold-grid sweeps."""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import format_table
from repro.core.engines import ENGINES
from repro.core.options import ObservabilityOptions
from repro.cli._options import (
    _WORKLOADS,
    _add_jobs_flag,
    _add_logging_flag,
    _add_profiling_flags,
    _add_progress_flag,
    _load,
    _resilience_options,
    _threshold,
)


def configure(commands) -> None:
    """Register the sweep subparser."""
    sweep = commands.add_parser(
        "sweep",
        help="shared-scan threshold-grid sweep (repro-sweep/v1)",
    )
    sweep.add_argument("--input", default=None, help="input file path")
    sweep.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
        help="input file format (default: transactions)",
    )
    sweep.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), default=None,
        help="generate this synthetic workload instead of --input",
    )
    sweep.add_argument("--scale", type=float, default=0.05)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--pers", type=float, nargs="+", required=True
    )
    sweep.add_argument(
        "--min-ps", type=_threshold, nargs="+", required=True,
        dest="min_ps_values",
    )
    sweep.add_argument("--min-recs", type=int, nargs="+", default=[1])
    sweep.add_argument(
        "--engine", choices=ENGINES, default="rp-growth"
    )
    sweep.add_argument(
        "--no-derive",
        action="store_true",
        help="mine every cell instead of deriving tighter min_rec "
        "cells from their column's loosest mine (slower; identical "
        "results — useful for timing comparisons)",
    )
    sweep.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="mine each mined cell N times, keep the fastest timing",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    _add_logging_flag(sweep)
    _add_profiling_flags(sweep)
    _add_progress_flag(sweep, metrics=True)
    _add_jobs_flag(sweep)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepPlan, run_sweep

    if (args.input is None) == (args.dataset is None):
        print(
            "error: pass exactly one of --input or --dataset",
            file=sys.stderr,
        )
        return 2
    if args.input is not None:
        database = _load(args.input, args.format)
        dataset = args.input
    else:
        database = _WORKLOADS[args.dataset](
            scale=args.scale, seed=args.seed
        )
        dataset = args.dataset
    plan = SweepPlan(
        pers=tuple(args.pers),
        min_ps_values=tuple(args.min_ps_values),
        min_recs=tuple(args.min_recs),
        engine=args.engine,
        jobs=args.jobs,
        derive_min_rec=not args.no_derive,
        repeats=args.repeats,
        resilience=_resilience_options(args),
    )
    result = run_sweep(
        database,
        plan,
        dataset=dataset,
        observability=ObservabilityOptions(
            trace=args.trace_out,
            track_memory=args.track_memory,
            progress=args.progress,
            metrics=args.metrics_out,
        ),
    )
    rows = [
        (
            f"{per:g}",
            str(min_ps),
            str(min_rec),
            len(result.pattern_set(per, min_ps, min_rec)),
            "derived" if result.derived_from[(per, min_ps, min_rec)]
            else "mined",
            f"{result.seconds_by_cell[(per, min_ps, min_rec)]:.6f}",
        )
        for per, min_ps, min_rec in plan.cells()
    ]
    print(
        format_table(
            ["per", "minPS", "minRec", "patterns", "how", "seconds"],
            rows,
            title=f"{dataset}: sweep ({plan.engine})",
        )
    )
    print(result.summary_line(), file=sys.stderr)
    if args.trace_out:
        print(f"sweep trace written to {args.trace_out}", file=sys.stderr)
    if args.profile:
        totals: dict = {"transform": result.transform_seconds}
        for key in plan.cells():
            for name, seconds in result.phase_breakdown(*key).items():
                totals[name] = totals.get(name, 0.0) + seconds
        prows = [
            [name, f"{seconds:.6f}"] for name, seconds in totals.items()
        ]
        prows.append(["total", f"{result.seconds:.6f}"])
        print(
            format_table(
                ["phase", "seconds"], prows,
                title=f"{dataset}: phase totals over the grid",
            ),
            file=sys.stderr,
        )
    return 0
