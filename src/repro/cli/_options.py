"""Shared option groups and helpers for the ``repro-mine`` subcommands.

Every subcommand family module pulls its common flags from here so the
flag vocabulary stays identical across the CLI: ``--log-level``,
``--jobs``/``--chunk-timeout``/``--max-retries``,
``--progress``/``--no-progress`` (+ ``--metrics-out``), and
``--profile``/``--trace-out``/``--track-memory``.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable

from repro.bench.workloads import WORKLOADS
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.timeseries.database import TransactionalDatabase
from repro.timeseries.io import (
    load_event_sequence,
    load_transactional_database,
)

#: Named synthetic workloads selectable with ``--dataset``.
_WORKLOADS = WORKLOADS

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _add_logging_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=None,
        help="enable stdlib logging at this level (stderr)",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the pruning engines "
        "(1 = serial, the default; see docs/performance.md)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline for parallel runs; an expired chunk "
        "is retried and finally re-mined serially (default: no "
        "deadline; only meaningful with --jobs > 1)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per failed parallel chunk before the serial "
        "fallback kicks in (default 2; only meaningful with "
        "--jobs > 1)",
    )


def _add_progress_flag(
    parser: argparse.ArgumentParser, metrics: bool = False
) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--progress",
        action="store_true",
        dest="progress",
        default=None,
        help="live progress/ETA lines on stderr "
        "(default: on only when stderr is a TTY)",
    )
    group.add_argument(
        "--no-progress",
        action="store_false",
        dest="progress",
        help="disable live progress even on a TTY",
    )
    if metrics:
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write periodic repro-metrics/v1 snapshots (JSON "
            "lines: counters, gauges, histograms — see "
            "docs/observability.md)",
        )


def _add_profiling_flags(
    parser: argparse.ArgumentParser, memory: bool = True
) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a phase-timing and counter table to stderr",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSON-lines trace (spans + repro-run/v1 record)",
    )
    if memory:
        parser.add_argument(
            "--track-memory",
            action="store_true",
            help="also sample peak memory per phase (tracemalloc; slower)",
        )


def _load(path: str, file_format: str) -> TransactionalDatabase:
    if file_format == "events":
        return TransactionalDatabase.from_events(load_event_sequence(path))
    return load_transactional_database(path)


def _monitored_call(
    args: argparse.Namespace,
    label: str,
    fn: Callable[[], object],
    count: Callable[[object], int] = len,  # type: ignore[assignment]
):
    """Run ``fn`` as a single-unit monitor phase when live output is on.

    Covers the code paths that bypass ``mine_recurring_patterns``
    (the noise-tolerant miner, the baseline miners): with
    ``--progress``/``--metrics-out`` off this is a plain call, with
    them on the run still gets a progress line, the in-process
    heartbeat and a final metrics snapshot — nothing silently drops.
    """
    from repro.obs.progress import monitor_from_options

    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress,
            metrics=getattr(args, "metrics_out", None),
        )
    )
    if monitor is None:
        return fn()
    started = time.perf_counter()
    try:
        monitor.phase_started(label, units=1)
        try:
            result = fn()
            monitor.unit_done(0)
            monitor.serial_beat()
        finally:
            monitor.phase_finished()
        monitor.run_finished(
            engine=label,
            stats=None,
            seconds=time.perf_counter() - started,
            patterns_found=count(result),
        )
        return result
    finally:
        monitor.close()


def _resilience_options(args: argparse.Namespace) -> ResilienceOptions:
    """The --chunk-timeout/--max-retries flags as a ResilienceOptions."""
    return ResilienceOptions(
        timeout=args.chunk_timeout, max_retries=args.max_retries
    )


def _threshold(text: str):
    """Parse a support-like threshold: '3' -> 3, '0.02' -> 0.02."""
    value = float(text)
    if value >= 1 and value == int(value):
        return int(value)
    return value
