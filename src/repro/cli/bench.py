"""The ``bench``, ``compare``, ``generate`` and ``stats`` subcommands."""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import format_table
from repro.core.engines import ENGINES
from repro.core.options import ObservabilityOptions
from repro.cli._options import (
    _WORKLOADS,
    _add_jobs_flag,
    _add_logging_flag,
    _add_profiling_flags,
    _add_progress_flag,
    _load,
    _resilience_options,
    _threshold,
)


def configure(commands) -> None:
    """Register the bench-family subparsers."""
    generate = commands.add_parser(
        "generate", help="generate a synthetic workload"
    )
    generate.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    generate.add_argument("--output", required=True, help="output file path")
    generate.add_argument(
        "--scale", type=float, default=0.1, help="fraction of paper scale"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="describe a database file")
    stats.add_argument("--input", required=True)
    stats.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )
    stats.set_defaults(handler=_cmd_stats)

    bench = commands.add_parser(
        "bench", help="parameter sweep (Tables 5 and 7)"
    )
    bench.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    bench.add_argument("--scale", type=float, default=0.05)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--pers", type=float, nargs="+", default=[360, 720, 1440]
    )
    bench.add_argument(
        "--min-ps", type=_threshold, nargs="+", required=True,
        dest="min_ps_values",
    )
    bench.add_argument("--min-recs", type=int, nargs="+", default=[1, 2, 3])
    bench.add_argument(
        "--engine", choices=ENGINES, default="rp-growth"
    )
    bench.add_argument(
        "--runtime", action="store_true", help="also measure wall-clock"
    )
    bench.set_defaults(handler=_cmd_bench)

    compare = commands.add_parser(
        "compare", help="model comparison (Table 8)"
    )
    compare.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), required=True
    )
    compare.add_argument("--scale", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--per", type=float, default=1440)
    compare.add_argument("--min-sup", type=_threshold, required=True)
    compare.add_argument("--min-ps", type=_threshold, required=True)
    compare.add_argument("--min-rec", type=int, default=1)
    compare.set_defaults(handler=_cmd_compare)

    for sub in (generate, stats, bench, compare):
        _add_logging_flag(sub)
    _add_profiling_flags(bench, memory=False)
    _add_progress_flag(bench, metrics=True)
    _add_jobs_flag(bench)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.timeseries.io import save_transactional_database

    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    save_transactional_database(database, args.output)
    print(
        f"wrote {len(database)} transactions "
        f"({len(database.items())} items) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.timeseries.stats import describe_database

    database = _load(args.input, args.format)
    stats = describe_database(database)
    print(format_table(["statistic", "value"], stats.as_rows()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import sweep_pattern_counts, sweep_runtime
    from repro.obs.progress import monitor_from_options

    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    # One monitor covers both sweeps — two independently built monitors
    # would each reopen (and truncate) the same --metrics-out file.
    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress, metrics=args.metrics_out
        )
    )
    live = (
        ObservabilityOptions(monitor=monitor)
        if monitor is not None else None
    )
    try:
        counts = sweep_pattern_counts(
            database,
            args.dataset,
            args.pers,
            args.min_ps_values,
            args.min_recs,
            engine=args.engine,
            jobs=args.jobs,
            resilience=_resilience_options(args),
            observability=live,
        )
        print(counts.as_table())
        # A trace or profile needs per-cell timings, so those imply the
        # runtime sweep.
        runtime = None
        if args.runtime or args.profile or args.trace_out:
            runtime = sweep_runtime(
                database,
                args.dataset,
                args.pers,
                args.min_ps_values,
                args.min_recs,
                engine=args.engine,
                jobs=args.jobs,
                resilience=_resilience_options(args),
                observability=live,
            )
            print()
            print(runtime.as_table())
    finally:
        if monitor is not None:
            monitor.close()
    if args.trace_out and runtime is not None:
        from repro.obs import RUN_SCHEMA, TraceWriter

        with TraceWriter(args.trace_out) as writer:
            for key in runtime.cells:
                per, min_ps, min_rec = key
                phases = runtime.phase_breakdown(per, min_ps, min_rec)
                writer.write_record({
                    "schema": RUN_SCHEMA,
                    "kind": "run",
                    "engine": args.engine,
                    "dataset": args.dataset,
                    "params": {
                        "per": per, "min_ps": min_ps, "min_rec": min_rec,
                    },
                    "patterns_found": int(counts.value(*key)),
                    "seconds": runtime.value(*key),
                    "counters": counts.stats[key].as_dict(),
                    "spans": [
                        {"name": name, "seconds": seconds}
                        for name, seconds in phases.items()
                    ],
                })
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.profile and runtime is not None:
        totals: dict = {}
        for key in runtime.cells:
            for name, seconds in runtime.phase_breakdown(*key).items():
                totals[name] = totals.get(name, 0.0) + seconds
        rows = [[name, f"{seconds:.6f}"] for name, seconds in totals.items()]
        rows.append(["total", f"{sum(totals.values()):.6f}"])
        print(
            format_table(
                ["phase", "seconds"], rows,
                title=f"{args.dataset}: phase totals over the grid",
            ),
            file=sys.stderr,
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.harness import compare_models

    database = _WORKLOADS[args.dataset](scale=args.scale, seed=args.seed)
    result = compare_models(
        database,
        args.dataset,
        per=args.per,
        min_sup=args.min_sup,
        min_ps=args.min_ps,
        min_rec=args.min_rec,
    )
    print(result.as_table())
    return 0
