"""The ``mine``, ``rules`` and ``baseline`` subcommands.

``mine`` is the front door: it builds one
:class:`~repro.core.request.MiningRequest` from the flags and executes
it through :func:`repro.core.miner.execute_request` — exactly the
object the sweep engine, the shard pipeline and the service daemon
execute, so every entry point shares one validation and dispatch path.
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.bench.reporting import format_table
from repro.core.engines import ENGINES
from repro.core.options import ObservabilityOptions
from repro.cli._options import (
    _add_jobs_flag,
    _add_logging_flag,
    _add_profiling_flags,
    _add_progress_flag,
    _load,
    _monitored_call,
    _resilience_options,
    _threshold,
)


def configure(commands) -> None:
    """Register the mine-family subparsers."""
    mine = commands.add_parser("mine", help="mine recurring patterns")
    mine.add_argument("--input", required=True, help="input file path")
    mine.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
        help="input file format (default: transactions)",
    )
    mine.add_argument(
        "--per", type=float, required=True, help="period threshold"
    )
    mine.add_argument(
        "--min-ps",
        type=_threshold,
        required=True,
        help="minimum periodic-support (count, or fraction like 0.02)",
    )
    mine.add_argument(
        "--min-rec", type=int, default=1,
        help="minimum recurrence (default 1)",
    )
    mine.add_argument(
        "--engine", choices=ENGINES, default="rp-growth",
        help="mining engine",
    )
    mine.add_argument(
        "--top", type=int, default=0,
        help="print only the N highest-support patterns",
    )
    mine.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="mine through the time-sharded pipeline with N shards "
        "(byte-identical output; see the shard subcommand for the "
        "out-of-core file variant)",
    )
    mine.add_argument(
        "--max-faults",
        type=int,
        default=0,
        help="fault credits per interval (noise-tolerant mining; "
        "default 0)",
    )
    mine.add_argument(
        "--fault-per",
        type=float,
        default=None,
        help="forgiving gap threshold for faults (default 2*per)",
    )
    condensation = mine.add_mutually_exclusive_group()
    condensation.add_argument(
        "--closed", action="store_true", help="report closed patterns only"
    )
    condensation.add_argument(
        "--maximal", action="store_true",
        help="report maximal patterns only",
    )
    mine.add_argument(
        "--timeline",
        action="store_true",
        help="draw each pattern's intervals on a time axis",
    )
    mine.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a markdown report of the run to PATH",
    )
    mine.add_argument(
        "--save-patterns",
        default=None,
        metavar="PATH",
        help="also write the mined pattern set (reloadable TSV) to PATH",
    )
    mine.set_defaults(handler=_cmd_mine)

    rules = commands.add_parser(
        "rules", help="derive recurring association rules"
    )
    rules.add_argument("--input", required=True)
    rules.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )
    rules.add_argument("--per", type=float, required=True)
    rules.add_argument("--min-ps", type=_threshold, required=True)
    rules.add_argument("--min-rec", type=int, default=1)
    rules.add_argument("--min-confidence", type=float, default=0.5)
    rules.add_argument("--top", type=int, default=20)
    rules.set_defaults(handler=_cmd_rules)

    baseline = commands.add_parser(
        "baseline", help="run one of the baseline miners"
    )
    baseline.add_argument("--input", required=True)
    baseline.add_argument(
        "--format",
        choices=("transactions", "events"),
        default="transactions",
    )
    baseline.add_argument(
        "--model",
        choices=(
            "frequent",
            "periodic-frequent",
            "p-pattern",
            "partial-periodic",
            "async-periodic",
        ),
        required=True,
    )
    baseline.add_argument("--per", type=float, default=1440)
    baseline.add_argument("--min-sup", type=_threshold, required=True)
    baseline.add_argument(
        "--window", type=float, default=0, help="p-pattern tolerance window"
    )
    baseline.add_argument(
        "--min-rep", type=int, default=2,
        help="async-periodic min repetitions",
    )
    baseline.add_argument(
        "--max-dis", type=int, default=10,
        help="async-periodic max disturbance",
    )
    baseline.add_argument("--top", type=int, default=20)
    baseline.set_defaults(handler=_cmd_baseline)

    for sub in (mine, rules, baseline):
        _add_logging_flag(sub)
    _add_profiling_flags(mine)
    _add_profiling_flags(baseline)
    _add_progress_flag(mine, metrics=True)
    _add_progress_flag(baseline)
    _add_jobs_flag(mine)
    _add_jobs_flag(baseline)


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.core.miner import execute_request
    from repro.core.request import MiningRequest

    database = _load(args.input, args.format)
    profiling = args.profile or args.trace_out or args.track_memory
    telemetry = None
    if args.max_faults:
        if args.jobs > 1:
            print(
                "note: the noise-tolerant miner is serial; --jobs ignored",
                file=sys.stderr,
            )
        if args.shards:
            print(
                "note: the noise-tolerant miner does not shard; "
                "--shards ignored",
                file=sys.stderr,
            )
        from repro.core.noise import mine_noise_tolerant_patterns

        def run_noise_miner():
            return mine_noise_tolerant_patterns(
                database,
                per=args.per,
                min_ps=args.min_ps,
                min_rec=args.min_rec,
                fault_per=args.fault_per,
                max_faults=args.max_faults,
            )

        if profiling:
            from repro.obs import TraceWriter, profile_call

            found, telemetry = _monitored_call(
                args,
                "noise-tolerant",
                lambda: profile_call(
                    run_noise_miner,
                    engine="noise-tolerant",
                    params={
                        "per": args.per,
                        "min_ps": args.min_ps,
                        "min_rec": args.min_rec,
                        "max_faults": args.max_faults,
                    },
                    track_memory=args.track_memory,
                ),
                count=lambda pair: len(pair[0]),
            )
            if args.trace_out:
                with TraceWriter(args.trace_out) as writer:
                    writer.write_run(telemetry)
        else:
            found = _monitored_call(
                args, "noise-tolerant", run_noise_miner
            )
    else:
        request = MiningRequest(
            per=args.per,
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            engine=args.engine,
            jobs=args.jobs,
            shards=args.shards,
            resilience=_resilience_options(args),
            observability=ObservabilityOptions(
                collect_stats=bool(profiling),
                trace=args.trace_out if profiling else None,
                track_memory=args.track_memory,
                progress=args.progress,
                metrics=args.metrics_out,
            ),
        )
        if profiling:
            found, telemetry = execute_request(request, database)
        else:
            found = execute_request(request, database)
    if telemetry is not None:
        telemetry.log(level=logging.DEBUG)
        if args.profile:
            print(telemetry.summary_table(), file=sys.stderr)
    if args.closed:
        from repro.core.condensed import closed_patterns

        found = closed_patterns(found)
    elif args.maximal:
        from repro.core.condensed import maximal_patterns

        found = maximal_patterns(found)
    patterns = found.top(args.top) if args.top else list(found)
    rows = [
        (
            " ".join(str(item) for item in p.sorted_items()),
            p.support,
            p.recurrence,
            ", ".join(str(interval) for interval in p.intervals),
        )
        for p in patterns
    ]
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            rows,
            title=(
                f"{len(found)} recurring patterns "
                f"(per={args.per:g}, minPS={args.min_ps}, "
                f"minRec={args.min_rec})"
            ),
        )
    )
    if args.timeline and patterns and len(database):
        from repro.viz import render_timeline

        print()
        print(render_timeline(patterns, database.start, database.end))
    if args.report:
        from repro.report import write_mining_report

        write_mining_report(
            args.report, database, found,
            per=args.per, min_ps=args.min_ps, min_rec=args.min_rec,
            engine=args.engine,
            stats=telemetry.stats if telemetry is not None else None,
        )
        print(f"report written to {args.report}")
    if args.save_patterns:
        from repro.patterns_io import save_patterns

        save_patterns(found, args.save_patterns)
        print(f"patterns written to {args.save_patterns}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.core.miner import mine_recurring_patterns
    from repro.core.rules import derive_rules

    database = _load(args.input, args.format)
    found = mine_recurring_patterns(
        database, per=args.per, min_ps=args.min_ps, min_rec=args.min_rec
    )
    rules = derive_rules(
        found, database, min_confidence=args.min_confidence
    )
    print(
        f"{len(rules)} recurring association rules "
        f"(min confidence {args.min_confidence:g})"
    )
    for rule in rules[: args.top]:
        print(f"  {rule}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.baselines import (
        mine_async_periodic_patterns,
        mine_frequent_patterns,
        mine_p_patterns,
        mine_partial_periodic_patterns,
        mine_periodic_frequent_patterns,
    )

    database = _load(args.input, args.format)
    if args.jobs > 1:
        print(
            "note: baseline miners are serial; --jobs ignored "
            "(parallel mining is for the recurring-pattern engines)",
            file=sys.stderr,
        )

    def run_baseline():
        if args.model == "frequent":
            return list(mine_frequent_patterns(database, args.min_sup))
        if args.model == "periodic-frequent":
            return list(
                mine_periodic_frequent_patterns(
                    database, args.min_sup, args.per
                )
            )
        if args.model == "p-pattern":
            mode = "tolerance" if args.window else "threshold"
            return list(
                mine_p_patterns(
                    database, args.per, args.min_sup,
                    window=args.window, mode=mode,
                )
            )
        if args.model == "partial-periodic":
            return mine_partial_periodic_patterns(
                database, int(args.per), args.min_sup
            )
        return mine_async_periodic_patterns(
            database, int(args.per), args.min_rep, args.max_dis
        )

    if args.profile or args.trace_out or args.track_memory:
        from repro.obs import TraceWriter, profile_call

        results, telemetry = _monitored_call(
            args,
            f"baseline/{args.model}",
            lambda: profile_call(
                run_baseline,
                engine=f"baseline/{args.model}",
                params={"per": args.per, "min_sup": args.min_sup},
                track_memory=args.track_memory,
            ),
            count=lambda pair: len(pair[0]),
        )
        telemetry.log(level=logging.DEBUG)
        if args.trace_out:
            with TraceWriter(args.trace_out) as writer:
                writer.write_run(telemetry)
        if args.profile:
            print(telemetry.summary_table(), file=sys.stderr)
    else:
        results = _monitored_call(
            args, f"baseline/{args.model}", run_baseline
        )
    print(f"{len(results)} {args.model} patterns")
    for pattern in results[: args.top]:
        print(f"  {pattern}")
    return 0
