"""The ``shard`` subcommand: out-of-core mining over a sorted file."""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.reporting import format_table
from repro.core.engines import ENGINES
from repro.core.options import ObservabilityOptions
from repro.cli._options import (
    _add_jobs_flag,
    _add_logging_flag,
    _add_progress_flag,
    _resilience_options,
    _threshold,
)


def configure(commands) -> None:
    """Register the shard subparser."""
    shard = commands.add_parser(
        "shard",
        help="out-of-core mining: stream a time-sorted transaction "
        "file in bounded-memory shards (byte-identical to mine)",
    )
    shard.add_argument(
        "--input",
        required=True,
        help="transaction file with non-decreasing timestamps",
    )
    shard.add_argument(
        "--per", type=float, required=True, help="period threshold"
    )
    shard.add_argument(
        "--min-ps",
        type=_threshold,
        required=True,
        help="minimum periodic-support (count, or fraction like 0.02)",
    )
    shard.add_argument(
        "--min-rec", type=int, default=1,
        help="minimum recurrence (default 1)",
    )
    shard.add_argument(
        "--engine", choices=ENGINES, default="rp-growth",
        help="mining engine",
    )
    shard.add_argument(
        "--top", type=int, default=0,
        help="print only the N highest-support patterns",
    )
    shard.add_argument(
        "--max-events",
        type=int,
        default=100_000,
        metavar="N",
        help="per-shard transaction bound — the peak-memory knob "
        "(default 100000)",
    )
    shard.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the input instead of buffered reads",
    )
    shard.set_defaults(handler=_cmd_shard)

    _add_logging_flag(shard)
    _add_progress_flag(shard, metrics=True)
    _add_jobs_flag(shard)


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.core.request import MiningRequest
    from repro.obs.progress import monitor_from_options
    from repro.shard import mine_sharded_file_request

    request = MiningRequest(
        per=args.per,
        min_ps=args.min_ps,
        min_rec=args.min_rec,
        engine=args.engine,
        jobs=args.jobs,
        max_events_in_memory=args.max_events,
        resilience=_resilience_options(args),
    )
    monitor = monitor_from_options(
        ObservabilityOptions(
            progress=args.progress, metrics=args.metrics_out
        )
    )
    started = time.perf_counter()
    try:
        found, stats, faults, report = mine_sharded_file_request(
            args.input,
            request,
            monitor=monitor,
            use_mmap=args.mmap,
        )
        if monitor is not None:
            monitor.run_finished(
                engine=args.engine,
                stats=stats,
                seconds=time.perf_counter() - started,
                patterns_found=len(found),
            )
    finally:
        if monitor is not None:
            monitor.close()
    patterns = found.top(args.top) if args.top else list(found)
    rows = [
        (
            " ".join(str(item) for item in p.sorted_items()),
            p.support,
            p.recurrence,
            ", ".join(str(interval) for interval in p.intervals),
        )
        for p in patterns
    ]
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            rows,
            title=(
                f"{len(found)} recurring patterns "
                f"(per={args.per:g}, minPS={args.min_ps}, "
                f"minRec={args.min_rec}, out-of-core)"
            ),
        )
    )
    print(
        f"shards: {report.shard_count} "
        f"(max {args.max_events} transactions each), "
        f"candidates: {report.local_candidates} local + "
        f"{report.boundary_candidates} boundary, "
        f"stitched runs: {report.merge.stitched_runs}, "
        f"boundary patterns: {report.merge.boundary_patterns}"
    )
    if faults:
        print(
            f"note: {len(faults)} parallel fault(s) handled",
            file=sys.stderr,
        )
    return 0
