"""Command-line interface: ``repro-mine`` (or ``python -m repro.cli``).

The CLI is a package of subcommand families, one module each:

* :mod:`repro.cli.mine` — ``mine``, ``rules``, ``baseline``
* :mod:`repro.cli.bench` — ``bench``, ``compare``, ``generate``, ``stats``
* :mod:`repro.cli.sweep` — ``sweep``
* :mod:`repro.cli.stream` — ``stream``
* :mod:`repro.cli.shard` — ``shard``
* :mod:`repro.cli.qa` — ``qa``
* :mod:`repro.cli.trace` — ``trace``
* :mod:`repro.cli.serve` — ``serve``, ``submit``, ``status``, ``fetch``

Shared option groups (``--jobs``, ``--progress``, ``--profile``,
``--log-level``, threshold parsing, file loading) live in
:mod:`repro.cli._options`; every family registers its subparsers
through a ``configure(commands)`` hook and attaches its handler with
``set_defaults(handler=...)``, so :func:`main` is a thin
parse-and-dispatch loop.

Every long-running subcommand takes ``--progress``/``--no-progress``
(default: progress is on only when stderr is a TTY) and the mining
ones take ``--metrics-out`` for periodic ``repro-metrics/v1``
snapshots.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]

from repro.cli import (  # noqa: E402  (import order mirrors the menu)
    bench as _bench,
    mine as _mine,
    qa as _qa,
    serve as _serve,
    shard as _shard,
    stream as _stream,
    sweep as _sweep,
    trace as _trace,
)

#: Subcommand families in the order their commands appear in --help.
_FAMILIES = (
    _mine, _bench, _sweep, _stream, _shard, _qa, _trace, _serve,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-mine`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Recurring pattern mining in time series (EDBT 2015).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for family in _FAMILIES:
        family.configure(commands)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
        )
    handler = getattr(args, "handler", None)
    if handler is None:  # pragma: no cover - argparse enforces required
        raise AssertionError(f"unhandled command {args.command!r}")
    try:
        return handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
