"""The ``trace`` subcommand: JSON-lines trace analysis."""

from __future__ import annotations

import argparse
import sys

from repro.cli._options import _add_logging_flag


def configure(commands) -> None:
    """Register the trace subparser."""
    trace = commands.add_parser(
        "trace",
        help="analyze a JSON-lines trace (span tree, phase "
        "aggregates, critical path, A/B comparison)",
    )
    trace.add_argument(
        "--input",
        required=True,
        metavar="PATH",
        help="trace file: any mix of repro-run/v1, repro-sweep/v1, "
        "repro-qa/v1 and repro-metrics/v1 lines",
    )
    trace.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="second trace; print a per-phase A/B table with percent "
        "deltas instead of the single-trace report",
    )
    trace.set_defaults(handler=_cmd_trace)
    _add_logging_flag(trace)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        analyze_trace,
        render_analysis,
        render_comparison,
    )

    try:
        analysis = analyze_trace(args.input)
        if args.compare:
            baseline = analyze_trace(args.compare)
            print(
                render_comparison(
                    analysis, baseline, label_a="A", label_b="B"
                )
            )
        else:
            print(render_analysis(analysis))
    except ValueError as error:
        print(f"error: malformed trace: {error}", file=sys.stderr)
        return 1
    return 0
