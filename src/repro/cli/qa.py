"""The ``qa`` subcommand: the conformance gate."""

from __future__ import annotations

import argparse
import sys

from repro.core.engines import ENGINES
from repro.cli._options import _add_logging_flag, _add_progress_flag


def configure(commands) -> None:
    """Register the qa subparser."""
    qa = commands.add_parser(
        "qa", help="run the conformance gate (see docs/testing.md)"
    )
    qa.add_argument(
        "--budget",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="soft wall-clock budget; the relation matrix always "
        "completes, extra cases stop once the budget is spent "
        "(default 120)",
    )
    qa.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed for the randomized suites (default: the "
        "library's pinned BASE_SEED)",
    )
    qa.add_argument(
        "--report",
        default="repro-qa-report.json",
        metavar="PATH",
        help="write the repro-qa/v1 JSON report here "
        "(default repro-qa-report.json; '-' disables)",
    )
    qa.add_argument(
        "--golden-dir",
        default=None,
        metavar="PATH",
        help="golden snapshot directory (default: tests/qa/golden)",
    )
    qa.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the golden snapshots before checking them "
        "(after an intentional model change)",
    )
    qa.add_argument(
        "--skip",
        action="append",
        choices=("relations", "golden", "differential"),
        default=None,
        metavar="SUITE",
        help="skip a suite (repeatable)",
    )
    qa.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=None,
        help="engines to exercise (default: all four)",
    )
    qa.add_argument(
        "--relation-cases",
        type=int,
        default=2,
        metavar="N",
        help="random relation cases on top of the running example "
        "(default 2)",
    )
    qa.add_argument(
        "--differential-cases",
        type=int,
        default=50,
        metavar="N",
        help="cap on differential cases (default 50; the budget "
        "usually binds first)",
    )
    qa.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without greedily shrinking them (faster)",
    )
    qa.set_defaults(handler=_cmd_qa)

    _add_logging_flag(qa)
    _add_progress_flag(qa)


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.obs.report import TraceWriter, validate_qa_record
    from repro.qa import BASE_SEED, QAConfig, run_qa

    progress = args.progress
    if progress is None:
        try:
            progress = bool(sys.stderr.isatty())
        except (AttributeError, ValueError):
            progress = False
    config = QAConfig(
        budget=args.budget,
        seed=args.seed if args.seed is not None else BASE_SEED,
        golden_dir=args.golden_dir,
        engines=tuple(args.engines) if args.engines else ENGINES,
        relation_cases=args.relation_cases,
        differential_cases=args.differential_cases,
        minimize=not args.no_minimize,
        skip=tuple(args.skip or ()),
        update_golden=args.update_golden,
        on_progress=(
            (lambda text: print(text, file=sys.stderr, flush=True))
            if progress else None
        ),
    )
    report = run_qa(config)
    for path in report.golden_written:
        print(f"golden snapshot written to {path}", file=sys.stderr)
    record = report.as_record()
    validate_qa_record(record)
    if args.report and args.report != "-":
        with TraceWriter(args.report) as writer:
            writer.write_record(record)
        print(f"qa report written to {args.report}", file=sys.stderr)
    print(report.summary_table())
    return 0 if report.passed else 1
