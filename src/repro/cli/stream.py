"""The ``stream`` subcommand: sharded multi-tenant streaming."""

from __future__ import annotations

import argparse
import sys

from repro.cli._options import _add_logging_flag, _load


def configure(commands) -> None:
    """Register the stream subparser."""
    stream = commands.add_parser(
        "stream",
        help="feed events through the sharded streaming registry "
        "(multi-tenant recurrence, checkpoint/restore; see "
        "docs/streaming.md)",
    )
    stream.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="event source: a database file, or '-' for stdin JSONL "
        '(one {"stream": ..., "ts": ..., "items": [...]} object per '
        "line)",
    )
    stream.add_argument(
        "--format",
        choices=("transactions", "events", "jsonl"),
        default="transactions",
        help="input format (default: transactions; '-' requires jsonl)",
    )
    stream.add_argument(
        "--stream",
        default="default",
        metavar="KEY",
        help="stream key for file inputs (JSONL lines carry their own; "
        "default 'default')",
    )
    stream.add_argument(
        "--per",
        type=float,
        default=None,
        help="period threshold (omit with --calendar or --restore)",
    )
    stream.add_argument(
        "--min-ps",
        type=int,
        default=None,
        help="minimum periodic-support as an absolute count (streams "
        "are unbounded, so fractions are not accepted here)",
    )
    stream.add_argument(
        "--min-rec", type=int, default=1, help="minimum recurrence"
    )
    stream.add_argument(
        "--calendar",
        choices=("hour-of-day", "day-of-week"),
        default=None,
        help="calendar-anchored period instead of --per (minute "
        "timestamps; see docs/streaming.md)",
    )
    stream.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="hash partitions for stream keys (default 16, or the "
        "checkpoint's count with --restore)",
    )
    stream.add_argument(
        "--max-active",
        type=int,
        default=None,
        metavar="N",
        help="cap on live monitors; least-recently-observed streams "
        "are spilled and re-admitted exactly (default: unbounded)",
    )
    stream.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a repro-stream/v1 checkpoint after feeding",
    )
    stream.add_argument(
        "--restore",
        default=None,
        metavar="PATH",
        help="resume from a repro-stream/v1 checkpoint (thresholds "
        "come from the checkpoint)",
    )
    stream.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a final repro-metrics/v1 snapshot of the "
        "repro_stream_* gauges and counters",
    )
    stream.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="recurring items shown per stream in the summary "
        "(default 5)",
    )
    stream.set_defaults(handler=_cmd_stream)
    _add_logging_flag(stream)


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import DataFormatError, ParameterError
    from repro.streaming import CalendarPeriod, ShardedMonitorRegistry

    metrics = None
    if args.metrics_out:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if args.restore:
        if (
            args.per is not None
            or args.min_ps is not None
            or args.calendar is not None
        ):
            raise ParameterError(
                "--restore carries its own thresholds; drop "
                "--per/--min-ps/--calendar"
            )
        registry = ShardedMonitorRegistry.restore(
            args.restore,
            shards=args.shards,
            max_active=args.max_active,
            metrics=metrics,
        )
        print(
            f"restored {len(registry.streams())} stream(s) from "
            f"{args.restore}",
            file=sys.stderr,
        )
    else:
        if args.min_ps is None:
            raise ParameterError("--min-ps is required without --restore")
        if (args.per is None) == (args.calendar is None):
            raise ParameterError(
                "exactly one of --per and --calendar is required "
                "without --restore"
            )
        kwargs: dict = {}
        if args.calendar is not None:
            kwargs["calendar"] = CalendarPeriod(args.calendar)
        else:
            kwargs["per"] = args.per
        registry = ShardedMonitorRegistry(
            min_ps=args.min_ps,
            min_rec=args.min_rec,
            shards=16 if args.shards is None else args.shards,
            max_active=args.max_active,
            metrics=metrics,
            **kwargs,
        )

    events = 0
    if args.input is not None:
        if args.format == "jsonl":
            handle = (
                sys.stdin if args.input == "-"
                else open(args.input, "r", encoding="utf-8")
            )
            try:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        registry.observe(
                            record.get("stream", args.stream),
                            record["ts"],
                            record["items"],
                        )
                    except (ValueError, KeyError, TypeError) as error:
                        raise DataFormatError(
                            f"bad event on line {lineno}: {error}"
                        )
                    events += 1
            finally:
                if handle is not sys.stdin:
                    handle.close()
        else:
            if args.input == "-":
                raise ParameterError(
                    "reading from stdin requires --format jsonl"
                )
            database = _load(args.input, args.format)
            try:
                for ts, itemset in database:
                    registry.observe(args.stream, ts, itemset)
                    events += 1
            except ValueError as error:
                raise DataFormatError(str(error))

    keys = registry.streams()
    print(
        f"fed {events} event(s) into {len(keys)} stream(s) "
        f"across {registry.shards} shard(s) "
        f"(active {registry.active_streams}, "
        f"evicted {registry.evicted_streams})"
    )
    for key in keys:
        monitor = registry.monitor(key)
        recurring = monitor.recurring_items()
        if registry.calendar is not None:
            labels = [
                f"{registry.calendar.label(slot)}:{item}"
                for slot, item in recurring
            ]
        else:
            labels = [str(item) for item in recurring]
        shown = ", ".join(labels[: args.top]) if labels else "-"
        extra = (
            f" (+{len(labels) - args.top} more)"
            if len(labels) > args.top
            else ""
        )
        print(f"  {key}: {len(labels)} recurring: {shown}{extra}")

    if args.checkpoint:
        written = registry.checkpoint(args.checkpoint)
        print(
            f"checkpoint: {written} bytes -> {args.checkpoint}",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs.report import TraceWriter

        with TraceWriter(args.metrics_out) as writer:
            writer.write_record(metrics.snapshot())
        print(
            f"metrics snapshot written to {args.metrics_out}",
            file=sys.stderr,
        )
    return 0
