"""The ``serve``, ``submit``, ``status`` and ``fetch`` subcommands.

``serve`` runs the mining service daemon (:mod:`repro.service`); the
other three are the thin client: build a
:class:`~repro.core.request.MiningRequest` from the same flags the
``mine`` subcommand takes, POST it, poll it, fetch the result.
"""

from __future__ import annotations

import argparse
import io
import sys

from repro.bench.reporting import format_table
from repro.core.engines import ENGINES
from repro.cli._options import (
    _WORKLOADS,
    _add_logging_flag,
    _threshold,
)

_DEFAULT_HOST = "127.0.0.1"
_DEFAULT_PORT = 8765


def _add_server_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default=_DEFAULT_HOST,
        help=f"service host (default {_DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port", type=int, default=_DEFAULT_PORT,
        help=f"service port (default {_DEFAULT_PORT})",
    )


def configure(commands) -> None:
    """Register the service subparsers."""
    serve = commands.add_parser(
        "serve",
        help="run the mining service daemon (see docs/service.md)",
    )
    _add_server_flags(serve)
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="bounded mining worker pool size (default 2)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=64, metavar="N",
        help="result-cache capacity in entries (default 64)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append a repro-run/v1 record per served job to PATH",
    )
    serve.set_defaults(handler=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit a mining job to a running service"
    )
    _add_server_flags(submit)
    source = submit.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input", default=None,
        help="transaction file path (readable by the server)",
    )
    source.add_argument(
        "--dataset", choices=sorted(_WORKLOADS), default=None,
        help="named synthetic workload instead of --input",
    )
    submit.add_argument("--scale", type=float, default=0.05)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--per", type=float, required=True, help="period threshold"
    )
    submit.add_argument(
        "--min-ps", type=_threshold, required=True,
        help="minimum periodic-support (count, or fraction like 0.02)",
    )
    submit.add_argument(
        "--min-rec", type=int, default=1,
        help="minimum recurrence (default 1)",
    )
    submit.add_argument(
        "--engine", choices=ENGINES, default="rp-growth",
        help="mining engine",
    )
    submit.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the mine itself",
    )
    submit.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="mine through the time-sharded pipeline with N shards",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print the result",
    )
    submit.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="--wait polling deadline (default 120)",
    )
    submit.add_argument(
        "--top", type=int, default=0,
        help="with --wait: print only the N highest-support patterns",
    )
    submit.set_defaults(handler=_cmd_submit)

    status = commands.add_parser(
        "status", help="poll a submitted job's state"
    )
    _add_server_flags(status)
    status.add_argument("--job", required=True, metavar="ID")
    status.set_defaults(handler=_cmd_status)

    fetch = commands.add_parser(
        "fetch", help="fetch a finished job's pattern set"
    )
    _add_server_flags(fetch)
    fetch.add_argument("--job", required=True, metavar="ID")
    fetch.add_argument(
        "--top", type=int, default=0,
        help="print only the N highest-support patterns",
    )
    fetch.add_argument(
        "--save-patterns", default=None, metavar="PATH",
        help="also write the pattern set (reloadable TSV) to PATH",
    )
    fetch.set_defaults(handler=_cmd_fetch)

    for sub in (serve, submit, status, fetch):
        _add_logging_flag(sub)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import run_server

    run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_size=args.cache_size,
        trace=args.trace_out,
    )
    return 0


def _build_request(args: argparse.Namespace):
    from repro.core.request import DatasetRef, MiningRequest

    if args.input is not None:
        source = DatasetRef.file(args.input)
    else:
        source = DatasetRef.named_workload(
            args.dataset, scale=args.scale, seed=args.seed
        )
    return MiningRequest(
        per=args.per,
        min_ps=args.min_ps,
        min_rec=args.min_rec,
        engine=args.engine,
        jobs=args.jobs,
        shards=args.shards,
        source=source,
    )


def _print_patterns(result: dict, top: int) -> None:
    from repro.patterns_io import load_patterns

    found = load_patterns(io.StringIO(result["patterns_tsv"]))
    patterns = found.top(top) if top else list(found)
    rows = [
        (
            " ".join(str(item) for item in p.sorted_items()),
            p.support,
            p.recurrence,
            ", ".join(str(interval) for interval in p.intervals),
        )
        for p in patterns
    ]
    print(
        format_table(
            ["pattern", "sup", "rec", "interesting periodic-intervals"],
            rows,
            title=(
                f"{len(found)} recurring patterns "
                f"(job {result['id']}, cache: {result['cache']})"
            ),
        )
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    job_id = client.submit(_build_request(args))
    if not args.wait:
        print(job_id)
        return 0
    status = client.wait(job_id, timeout=args.timeout)
    if status["status"] != "done":
        print(
            f"error: job {job_id} {status['status']}: "
            f"{status.get('error', 'timed out')}",
            file=sys.stderr,
        )
        return 1
    _print_patterns(client.result(job_id), args.top)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    status = ServiceClient(args.host, args.port).status(args.job)
    line = f"{status['id']}: {status['status']}"
    if status.get("cache"):
        line += f" (cache: {status['cache']})"
    if status.get("seconds") is not None:
        line += f" in {status['seconds']:.3f}s"
    if status.get("error"):
        line += f" — {status['error']}"
    print(line)
    return 0 if status["status"] != "failed" else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    result = ServiceClient(args.host, args.port).result(args.job)
    _print_patterns(result, args.top)
    if args.save_patterns:
        with open(args.save_patterns, "w", encoding="utf-8") as handle:
            handle.write(result["patterns_tsv"])
        print(f"patterns written to {args.save_patterns}")
    return 0
