"""The thin stdlib client of the mining service.

:class:`ServiceClient` speaks the daemon's four routes over
``http.client`` — submit a :class:`~repro.core.request.MiningRequest`,
poll it, fetch its result, scrape the metrics.  It is what the
``repro-mine submit``/``status``/``fetch`` subcommands and the service
tests use; anything that can POST JSON works just as well.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple

from repro.core.request import MiningRequest
from repro.exceptions import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError, RuntimeError):
    """The service refused or could not serve a request.

    Attributes
    ----------
    status:
        The HTTP status code, or ``None`` for transport failures.
    """

    def __init__(self, message: str, *, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Blocking JSON client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self, method: str, path: str, payload=None
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None else None
            )
            headers = (
                {"Content-Type": "application/json"} if body else {}
            )
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except OSError as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port} — "
                f"{error} (is `repro-mine serve` running?)"
            ) from error
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, payload=None, ok=(200, 202)
    ) -> Dict[str, object]:
        status, data = self._request(method, path, payload)
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": data.decode("utf-8", "replace").strip()}
        if status not in ok:
            detail = parsed.get("error") if isinstance(parsed, dict) else None
            raise ServiceError(
                f"{method} {path} failed with HTTP {status}"
                + (f": {detail}" if detail else ""),
                status=status,
            )
        return parsed

    # -- the API -------------------------------------------------------
    def submit(self, request: MiningRequest) -> str:
        """POST the request; returns the job id."""
        accepted = self._json("POST", "/jobs", request.to_dict())
        return accepted["id"]

    def status(self, job_id: str) -> Dict[str, object]:
        """The job's current status body."""
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        """The finished job's result body (patterns as TSV)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def metrics(self) -> str:
        """The Prometheus exposition text of ``GET /metrics``."""
        status, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(
                f"GET /metrics failed with HTTP {status}", status=status
            )
        return data.decode("utf-8")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        interval: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the job finishes (or the deadline passes).

        Returns the last status body either way; callers distinguish a
        timeout by ``status`` still being ``queued``/``running``.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                return status
            time.sleep(min(interval, max(deadline - time.monotonic(), 0.0)))
