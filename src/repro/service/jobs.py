"""Job bookkeeping for the mining service daemon.

A :class:`Job` is one submitted :class:`~repro.core.request.MiningRequest`
moving through ``queued → running → done | failed``; the
:class:`JobStore` hands out deterministic ids (``job-000001``, ...) and
bounds its own memory by pruning the oldest *finished* jobs once the
store exceeds ``max_jobs``.  In-flight jobs are never pruned.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.request import MiningRequest
from repro.exceptions import ParameterError

__all__ = ["Job", "JobStore"]

#: The job lifecycle, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted mining job and everything it produced."""

    id: str
    request: MiningRequest
    status: str = "queued"
    cache: Optional[str] = None
    seconds: Optional[float] = None
    patterns_found: Optional[int] = None
    error: Optional[str] = None
    patterns_tsv: Optional[str] = None
    record: Dict[str, object] = field(default_factory=dict)

    def as_status(self) -> Dict[str, object]:
        """The ``GET /jobs/{id}`` body."""
        return {
            "id": self.id,
            "status": self.status,
            "cache": self.cache,
            "seconds": self.seconds,
            "patterns_found": self.patterns_found,
            "error": self.error,
        }

    def as_result(self) -> Dict[str, object]:
        """The ``GET /jobs/{id}/result`` body (job must be done)."""
        return {
            "id": self.id,
            "status": self.status,
            "cache": self.cache,
            "seconds": self.seconds,
            "patterns_found": self.patterns_found,
            "patterns_tsv": self.patterns_tsv,
        }


class JobStore:
    """Thread-safe store of every job the daemon has accepted."""

    def __init__(self, max_jobs: int = 1024):
        if isinstance(max_jobs, bool) or not isinstance(
            max_jobs, int
        ) or max_jobs < 1:
            raise ParameterError(
                f"max_jobs must be a positive int, got {max_jobs!r}"
            )
        self.max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def create(self, request: MiningRequest) -> Job:
        """Accept a request: assign an id, prune finished overflow."""
        with self._lock:
            job = Job(id=f"job-{next(self._ids):06d}", request=request)
            self._jobs[job.id] = job
            if len(self._jobs) > self.max_jobs:
                for job_id in list(self._jobs):
                    if len(self._jobs) <= self.max_jobs:
                        break
                    candidate = self._jobs[job_id]
                    if candidate.status in ("done", "failed"):
                        del self._jobs[job_id]
            return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)
