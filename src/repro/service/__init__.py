"""The mining service daemon and its thin client (``docs/service.md``).

``repro-mine serve`` runs a :class:`MiningService`: an asyncio HTTP
daemon that accepts :class:`~repro.core.request.MiningRequest` wire
forms on ``POST /jobs``, mines them on a bounded worker pool through
the same :func:`~repro.core.miner.execute_request` dispatch every
other surface uses, and answers repeats from a content-addressed
:class:`ResultCache` — including *derived* answers, where a cached
looser-``min_rec`` cell in the same ``(dataset, engine, per, min_ps)``
column is recurrence-filtered down, byte-identical to a fresh mine.
:class:`ServiceClient` (behind ``repro-mine submit``/``status``/
``fetch``) is the matching stdlib client.
"""

from repro.service.cache import CacheEntry, CacheOutcome, ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import MiningService, run_server
from repro.service.jobs import Job, JobStore

__all__ = [
    "CacheEntry",
    "CacheOutcome",
    "Job",
    "JobStore",
    "MiningService",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "run_server",
]
