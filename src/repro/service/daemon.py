"""The asyncio mining service daemon.

One :class:`MiningService` owns four things: a minimal HTTP/1.1
listener (``asyncio.start_server`` — the container deliberately has no
web framework, and the protocol needed here is four routes with JSON
bodies), a bounded mining worker pool (an ``asyncio.Semaphore`` gating
a ``ThreadPoolExecutor``), the content-addressed
:class:`~repro.service.cache.ResultCache`, and the observability
surfaces every other mining path already has — ``repro_service_*``
counters in a :class:`~repro.obs.metrics.MetricsRegistry` exposed at
``GET /metrics``, plus one validated ``repro-run/v1`` record per served
job appended to the service trace.

Routes (see ``docs/service.md``):

* ``POST /jobs`` — a :class:`~repro.core.request.MiningRequest` wire
  form (must carry ``source``); returns ``202`` with the job id.
* ``GET /jobs/{id}`` — the job's status body.
* ``GET /jobs/{id}/result`` — the finished job's pattern set as
  reloadable TSV (``409`` until done).
* ``GET /metrics`` — Prometheus exposition of the registry.
* ``GET /healthz`` — liveness plus job/cache stats.

Mining happens in executor threads; the cache and trace writer are
lock-guarded accordingly.  Every served job — mined, exact hit, or
min_rec-derived — emits a run record whose ``cache`` field says which,
so a trace of the daemon is analyzable by ``repro-mine trace`` exactly
like a batch trace.
"""

from __future__ import annotations

import asyncio
import io
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Optional, Set, Tuple

from repro.core.miner import execute_request
from repro.core.options import ObservabilityOptions
from repro.core.request import MiningRequest
from repro.exceptions import ParameterError, ReproError
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.report import TraceWriter, validate_run_record
from repro.patterns_io import save_patterns
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobStore

__all__ = ["MiningService", "run_server"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

#: Content type of the Prometheus exposition format.
_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MiningService:
    """The daemon: HTTP front, worker pool, result cache, telemetry."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        workers: int = 2,
        cache_size: int = 64,
        registry: Optional[MetricsRegistry] = None,
        trace=None,
    ):
        if isinstance(workers, bool) or not isinstance(
            workers, int
        ) or workers < 1:
            raise ParameterError(
                f"workers must be a positive int, got {workers!r}"
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.cache = ResultCache(cache_size)
        self.jobs = JobStore()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._trace_target = trace
        self._trace_writer: Optional[TraceWriter] = None
        self._trace_lock = threading.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._tasks: Set[asyncio.Task] = set()
        self._evictions_exported = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the listener; ``self.port`` becomes the actual port."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._semaphore = asyncio.Semaphore(self.workers)
        if self._trace_target is not None:
            if hasattr(self._trace_target, "write"):
                self._trace_writer = TraceWriter(self._trace_target)
            else:
                # Append: a restarted daemon extends its trace.
                self._trace_writer = TraceWriter(
                    open(self._trace_target, "a", encoding="utf-8")
                )
                self._trace_writer._owns_handle = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Drain in-flight jobs, close the listener and the sinks."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._trace_writer is not None:
            self._trace_writer.close()
            self._trace_writer = None

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been awaited)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, content_type, payload = await self._respond(reader)
        except Exception as error:  # malformed request, broken pipe
            status, content_type, payload = (
                400,
                "application/json",
                json.dumps({"error": str(error)}).encode("utf-8"),
            )
        try:
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader) -> Tuple[int, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return self._json(400, {"error": "malformed request line"})
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return self._route(method, target, body)

    @staticmethod
    def _json(status: int, payload: Dict[str, object]) -> Tuple[int, str, bytes]:
        return (
            status,
            "application/json",
            json.dumps(payload, sort_keys=False).encode("utf-8"),
        )

    def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/jobs":
            if method != "POST":
                return self._json(405, {"error": "POST /jobs"})
            return self._submit(body)
        if path == "/metrics":
            if method != "GET":
                return self._json(405, {"error": "GET /metrics"})
            text = render_prometheus(self.registry)
            return 200, _PROMETHEUS_TYPE, text.encode("utf-8")
        if path == "/healthz":
            return self._json(
                200,
                {
                    "status": "ok",
                    "jobs": len(self.jobs),
                    "cache": self.cache.stats(),
                },
            )
        if path.startswith("/jobs/"):
            if method != "GET":
                return self._json(405, {"error": "GET only"})
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.jobs.get(job_id)
            if job is None:
                return self._json(404, {"error": f"unknown job {job_id!r}"})
            if not tail:
                return self._json(200, job.as_status())
            if tail == "result":
                if job.status == "failed":
                    return self._json(
                        409,
                        {**job.as_status(), "error": job.error},
                    )
                if job.status != "done":
                    return self._json(409, job.as_status())
                return self._json(200, job.as_result())
            return self._json(404, {"error": f"unknown path {path!r}"})
        return self._json(404, {"error": f"unknown path {path!r}"})

    def _submit(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return self._json(400, {"error": f"invalid JSON body: {error}"})
        try:
            request = MiningRequest.from_dict(record)
        except ReproError as error:
            return self._json(400, {"error": str(error)})
        if request.source is None:
            return self._json(
                400,
                {
                    "error": "mining request requires a source: the "
                    "daemon has no positional data argument — add "
                    "source={'kind': 'inline'|'file'|'workload', ...}"
                },
            )
        job = self.jobs.create(request)
        self._counter("repro_service_jobs_submitted_total").inc()
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return self._json(202, {"id": job.id, "status": job.status})

    # -- the worker path -----------------------------------------------
    async def _run_job(self, job: Job) -> None:
        assert self._semaphore is not None and self._executor is not None
        async with self._semaphore:
            job.status = "running"
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._execute, job)

    def _execute(self, job: Job) -> None:
        """Serve one job in a worker thread: cache, derive, or mine."""
        started = time.perf_counter()
        try:
            request = job.request
            database = request.source.load()
            digest = database.digest()
            outcome = self.cache.get(request, digest)
            if outcome is not None:
                patterns = outcome.patterns
                record = dict(outcome.record)
                record["params"] = request.thresholds()
                record["patterns_found"] = len(patterns)
                record["seconds"] = time.perf_counter() - started
                record["cache"] = outcome.how
                if outcome.base_min_rec is not None:
                    record["cache_base_min_rec"] = outcome.base_min_rec
                self._counter(
                    "repro_service_cache_hit_total"
                    if outcome.how == "hit"
                    else "repro_service_cache_derived_total"
                ).inc()
                job.cache = outcome.how
            else:
                # The server owns every sink: replace the wire
                # observability with stats collection only.
                obs = request.observability
                exec_request = replace(
                    request,
                    observability=ObservabilityOptions(
                        collect_stats=True,
                        track_memory=obs.track_memory,
                        dataset=obs.dataset,
                    ),
                )
                patterns, telemetry = execute_request(
                    exec_request, database
                )
                record = telemetry.as_run_record()
                record["cache"] = "miss"
                job.cache = "miss"
                self._counter("repro_service_cache_miss_total").inc()
                self.cache.put(request, digest, patterns, record)
                self._sync_eviction_counter()
            buffer = io.StringIO()
            save_patterns(patterns, buffer)
            job.patterns_tsv = buffer.getvalue()
            job.patterns_found = len(patterns)
            job.seconds = time.perf_counter() - started
            job.record = record
            validate_run_record(record)
            self._write_trace(record)
            job.status = "done"
            self._counter(
                "repro_service_jobs_served_total", {"result": "done"}
            ).inc()
        except Exception as error:  # surfaced via GET /jobs/{id}
            job.error = str(error)
            job.seconds = time.perf_counter() - started
            job.status = "failed"
            self._counter(
                "repro_service_jobs_served_total", {"result": "failed"}
            ).inc()

    # -- observability -------------------------------------------------
    def _counter(self, name: str, labels: Optional[Dict[str, str]] = None):
        return self.registry.counter(name, labels)

    def _sync_eviction_counter(self) -> None:
        with self._trace_lock:
            evictions = self.cache.stats()["evictions"]
            delta = evictions - self._evictions_exported
            if delta > 0:
                self._counter(
                    "repro_service_cache_evictions_total"
                ).inc(delta)
                self._evictions_exported = evictions

    def _write_trace(self, record: Dict[str, object]) -> None:
        if self._trace_writer is None:
            return
        with self._trace_lock:
            self._trace_writer.write_record(record)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    workers: int = 2,
    cache_size: int = 64,
    trace=None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Blocking entry point behind ``repro-mine serve``."""
    service = MiningService(
        host,
        port,
        workers=workers,
        cache_size=cache_size,
        trace=trace,
        registry=registry,
    )

    async def _main() -> None:
        await service.start()
        print(
            f"repro-mine service listening on "
            f"http://{service.host}:{service.port}",
            file=sys.stderr,
        )
        try:
            await service.serve_forever()
        finally:
            try:
                await service.stop()
            except Exception:
                pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro-mine service stopped", file=sys.stderr)
