"""The content-addressed, sweep-backed result cache.

Entries are keyed by :meth:`MiningRequest.cache_key` —
``(dataset_digest, engine, per, min_ps, min_rec)`` — so a cached
answer can never leak across datasets, engines or threshold points.
The sweep engine's min_rec derivation theorem (``docs/api.md``) adds a
second way to hit: within one *column* ``(dataset_digest, engine, per,
min_ps)``, the patterns at a tighter (larger) ``min_rec`` are a pure
recurrence filter of any looser cached cell, with identical support /
recurrence / interval metadata.  :meth:`ResultCache.get` therefore
serves a request from any cached column cell whose ``min_rec`` is at
most the requested one — byte-identical to a fresh mine, a guarantee
property-tested in ``tests/service/test_cache.py``.

Eviction is LRU over exact entries; a derivation refreshes its base
entry's recency (the base just proved itself useful).  The cache is
thread-safe: the daemon's worker pool calls it from executor threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.model import RecurringPatternSet
from repro.core.request import MiningRequest
from repro.exceptions import ParameterError

__all__ = ["CacheEntry", "CacheOutcome", "ResultCache"]


@dataclass
class CacheEntry:
    """One cached mine: the patterns plus their ``repro-run/v1`` record."""

    patterns: RecurringPatternSet
    record: Dict[str, object]


@dataclass
class CacheOutcome:
    """What a lookup produced and how.

    ``how`` is ``"hit"`` (exact key) or ``"derived"`` (recurrence
    filter of a looser column cell); ``base_min_rec`` names the cached
    cell that served a derivation.
    """

    patterns: RecurringPatternSet
    record: Dict[str, object]
    how: str
    base_min_rec: Optional[int] = None


class ResultCache:
    """LRU result cache with min_rec column derivation."""

    def __init__(self, max_entries: int = 64):
        if isinstance(max_entries, bool) or not isinstance(
            max_entries, int
        ) or max_entries < 1:
            raise ParameterError(
                f"max_entries must be a positive int, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.derived = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        """The cached exact keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def get(
        self, request: MiningRequest, dataset_digest: str
    ) -> Optional[CacheOutcome]:
        """Serve ``request`` from cache, exactly or by derivation."""
        key = request.cache_key(dataset_digest)
        column = request.column_key(dataset_digest)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CacheOutcome(
                    patterns=entry.patterns,
                    record=entry.record,
                    how="hit",
                )
            # The derivation theorem: any cached cell of the same
            # column at a looser (smaller) min_rec can answer.  Prefer
            # the tightest such base — it filters the least.
            base_key: Optional[Tuple] = None
            for candidate in self._entries:
                if candidate[:4] != column:
                    continue
                if candidate[4] > request.min_rec:
                    continue
                if base_key is None or candidate[4] > base_key[4]:
                    base_key = candidate
            if base_key is None:
                self.misses += 1
                return None
            base = self._entries[base_key]
            self._entries.move_to_end(base_key)
            self.derived += 1
            derived = base.patterns.filter(
                min_recurrence=request.min_rec
            )
            return CacheOutcome(
                patterns=derived,
                record=base.record,
                how="derived",
                base_min_rec=base_key[4],
            )

    def put(
        self,
        request: MiningRequest,
        dataset_digest: str,
        patterns: RecurringPatternSet,
        record: Dict[str, object],
    ) -> None:
        """Cache a freshly mined cell, evicting LRU entries if full."""
        key = request.cache_key(dataset_digest)
        with self._lock:
            self._entries[key] = CacheEntry(
                patterns=patterns, record=dict(record)
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counters for the ``/metrics`` endpoint and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "derived": self.derived,
                "misses": self.misses,
                "evictions": self.evictions,
            }
