"""repro — recurring pattern mining in time series.

A production-quality reproduction of *"Discovering Recurring Patterns
in Time Series"* (R. U. Kiran, H. Shang, M. Toyoda, M. Kitsuregawa,
EDBT 2015): the recurring-pattern model (periodic-intervals,
periodic-support, recurrence), the RP-growth algorithm with the Erec
pruning bound, the baselines the paper compares against
(periodic-frequent patterns, Ma & Hellerstein p-patterns), and
synthetic stand-ins for the paper's workloads.

Quickstart
----------
>>> from repro import mine_recurring_patterns
>>> from repro.datasets import paper_running_example
>>> found = mine_recurring_patterns(
...     paper_running_example(), per=2, min_ps=3, min_rec=2)
>>> len(found)
8
"""

from repro.core.condensed import (
    closed_patterns,
    maximal_patterns,
    top_k_patterns,
)
from repro.core.engines import (
    ENGINES,
    PARALLEL_ENGINES,
    EngineSpec,
    get_engine,
    register_engine,
)
from repro.core.miner import execute_request, mine_recurring_patterns
from repro.core.options import ObservabilityOptions, ResilienceOptions
from repro.core.request import DatasetRef, MiningRequest
from repro.core.model import (
    MiningParameters,
    PeriodicInterval,
    RecurringPattern,
    RecurringPatternSet,
)
from repro.core.naive import mine_recurring_patterns_naive
from repro.core.noise import NoiseTolerantMiner, mine_noise_tolerant_patterns
from repro.core.periods import suggest_per
from repro.core.rp_eclat import RPEclat
from repro.core.rp_growth import MiningStats, RPGrowth
from repro.core.rules import RecurringRule, SeasonalRecommender, derive_rules
from repro.core.targeted import mine_patterns_containing
from repro.obs import MiningTelemetry, SpanCollector, span
from repro.parallel import ParallelMiner
from repro.streaming import (
    CalendarPeriod,
    CalendarRecurrenceMonitor,
    ShardedMonitorRegistry,
    StreamingRecurrenceMonitor,
    mine_calendar_patterns,
)
from repro.sweep import SweepPlan, SweepResult, run_sweep
from repro.exceptions import (
    ChunkFailedError,
    DataFormatError,
    EmptyDatabaseError,
    ParameterError,
    ReproError,
    SearchSpaceError,
)
from repro.timeseries.database import Transaction, TransactionalDatabase
from repro.timeseries.events import Event, EventSequence

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core mining
    "mine_recurring_patterns",
    "mine_recurring_patterns_naive",
    "MiningRequest",
    "DatasetRef",
    "execute_request",
    "RPGrowth",
    "RPEclat",
    "ParallelMiner",
    "MiningStats",
    "MiningParameters",
    "RecurringPattern",
    "RecurringPatternSet",
    "PeriodicInterval",
    # Extensions
    "mine_noise_tolerant_patterns",
    "NoiseTolerantMiner",
    "closed_patterns",
    "maximal_patterns",
    "top_k_patterns",
    "RecurringRule",
    "SeasonalRecommender",
    "derive_rules",
    "StreamingRecurrenceMonitor",
    "ShardedMonitorRegistry",
    "CalendarPeriod",
    "CalendarRecurrenceMonitor",
    "mine_calendar_patterns",
    "suggest_per",
    "mine_patterns_containing",
    # Configuration and the engine registry
    "ResilienceOptions",
    "ObservabilityOptions",
    "ENGINES",
    "PARALLEL_ENGINES",
    "EngineSpec",
    "get_engine",
    "register_engine",
    # Threshold sweeps
    "SweepPlan",
    "SweepResult",
    "run_sweep",
    # Observability
    "MiningTelemetry",
    "SpanCollector",
    "span",
    # Data model
    "Event",
    "EventSequence",
    "Transaction",
    "TransactionalDatabase",
    # Errors
    "ReproError",
    "ParameterError",
    "DataFormatError",
    "EmptyDatabaseError",
    "SearchSpaceError",
    "ChunkFailedError",
]
